#ifndef KBT_COMMON_STATUS_H_
#define KBT_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace kbt {

/// Canonical error codes, a (small) subset of the usual database-engine set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error carrier used across the public API instead of
/// exceptions (RocksDB/Arrow idiom). A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Union of a Status and a value: either holds a T (status is OK) or an
/// error Status. Accessing the value of an errored StatusOr asserts.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  /// Dereferencing a temporary StatusOr moves the value out, so move-only
  /// payloads (e.g. api::Pipeline) flow through `Consume(*Produce())`.
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define KBT_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::kbt::Status _kbt_status = (expr);      \
    if (!_kbt_status.ok()) return _kbt_status; \
  } while (0)

}  // namespace kbt

#endif  // KBT_COMMON_STATUS_H_
