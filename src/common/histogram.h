#ifndef KBT_COMMON_HISTOGRAM_H_
#define KBT_COMMON_HISTOGRAM_H_

#include <string>
#include <vector>

namespace kbt {

/// Weighted histogram over explicit bucket edges. Bucket i covers
/// [edges[i], edges[i+1]); a final catch-all bucket covers values >= the last
/// edge. Used for the paper's distribution figures (Figures 5, 6, 7) and for
/// the WDev calibration buckets.
class Histogram {
 public:
  /// `edges` must be strictly increasing with at least one entry.
  explicit Histogram(std::vector<double> edges);

  /// Buckets matching the paper's Figure 5 x-axis for counts per
  /// URL/pattern: 1, 2, ..., 10, 11-100, 100-1K, 1K-10K, 10K-100K,
  /// 100K-1M, >1M.
  static Histogram TripleCountBuckets();

  /// `n` equal-width buckets over [0, 1] (probabilities). The final bucket
  /// includes 1.0.
  static Histogram UniformProbabilityBuckets(int n);

  /// The paper's non-uniform WDev buckets: [0,0.01)...[0.04,0.05),
  /// [0.05,0.1)...[0.9,0.95), [0.95,0.96)...[0.99,1), [1,1].
  static Histogram WDevBuckets();

  void Add(double value, double weight = 1.0);

  /// Index of the bucket `value` falls into.
  size_t BucketIndex(double value) const;

  size_t num_buckets() const { return counts_.size(); }
  double bucket_count(size_t i) const { return counts_[i]; }
  double bucket_lower(size_t i) const { return edges_[i]; }
  /// Upper edge; the last bucket reports +inf.
  double bucket_upper(size_t i) const;
  double total_weight() const { return total_; }

  /// Fraction of total weight in bucket i (0 when empty).
  double Fraction(size_t i) const;

  /// Human-readable label for bucket i, e.g. "[0.05,0.10)".
  std::string BucketLabel(size_t i) const;

  /// Resets all counts, keeping the edges.
  void Clear();

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace kbt

#endif  // KBT_COMMON_HISTOGRAM_H_
