#ifndef KBT_COMMON_HISTOGRAM_H_
#define KBT_COMMON_HISTOGRAM_H_

#include <string>
#include <vector>

#include "kbt/obs.h"

namespace kbt {

/// Weighted histogram over explicit bucket edges. Bucket i covers
/// [edges[i], edges[i+1]); a final catch-all bucket covers values >= the last
/// edge. Used for the paper's distribution figures (Figures 5, 6, 7) and for
/// the WDev calibration buckets.
///
/// The bucketing engine is kbt::obs::Histogram (the observability layer's
/// concurrent histogram, which generalized and absorbed this type); this
/// wrapper keeps the paper-specific factories and the original single-owner
/// analysis API. Richer statistics (quantiles, merge) are available through
/// impl().Snapshot().
class Histogram {
 public:
  /// `edges` must be strictly increasing with at least one entry.
  explicit Histogram(std::vector<double> edges);

  /// Buckets matching the paper's Figure 5 x-axis for counts per
  /// URL/pattern: 1, 2, ..., 10, 11-100, 100-1K, 1K-10K, 10K-100K,
  /// 100K-1M, >1M.
  static Histogram TripleCountBuckets();

  /// `n` equal-width buckets over [0, 1] (probabilities). The final bucket
  /// includes 1.0.
  static Histogram UniformProbabilityBuckets(int n);

  /// The paper's non-uniform WDev buckets: [0,0.01)...[0.04,0.05),
  /// [0.05,0.1)...[0.9,0.95), [0.95,0.96)...[0.99,1), [1,1].
  static Histogram WDevBuckets();

  void Add(double value, double weight = 1.0) { impl_.Add(value, weight); }

  /// Index of the bucket `value` falls into.
  size_t BucketIndex(double value) const { return impl_.BucketIndex(value); }

  size_t num_buckets() const { return impl_.num_buckets(); }
  double bucket_count(size_t i) const { return impl_.bucket_count(i); }
  double bucket_lower(size_t i) const { return impl_.bucket_lower(i); }
  /// Upper edge; the last bucket reports +inf.
  double bucket_upper(size_t i) const { return impl_.bucket_upper(i); }
  double total_weight() const { return impl_.total_weight(); }

  /// Fraction of total weight in bucket i (0 when empty).
  double Fraction(size_t i) const { return impl_.Fraction(i); }

  /// Human-readable label for bucket i, e.g. "[0.05,0.1)".
  std::string BucketLabel(size_t i) const { return impl_.BucketLabel(i); }

  /// Resets all counts, keeping the edges.
  void Clear() { impl_.Clear(); }

  /// The underlying observability histogram (quantiles, snapshots, merge).
  const obs::Histogram& impl() const { return impl_; }
  obs::Histogram& impl() { return impl_; }

 private:
  obs::Histogram impl_;
};

}  // namespace kbt

#endif  // KBT_COMMON_HISTOGRAM_H_
