#include "common/string_pool.h"

#include <cassert>

namespace kbt {

uint32_t StringPool::Intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(storage_.size());
  storage_.emplace_back(s);
  index_.emplace(std::string_view(storage_.back()), id);
  return id;
}

std::optional<uint32_t> StringPool::Find(std::string_view s) const {
  const auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string_view StringPool::Get(uint32_t id) const {
  assert(id < storage_.size());
  return storage_[id];
}

}  // namespace kbt
