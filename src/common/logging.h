#ifndef KBT_COMMON_LOGGING_H_
#define KBT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace kbt {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log statement. Accumulates into a stream and flushes (with a
/// timestamp and level tag) to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define KBT_LOG(level)                                               \
  ::kbt::internal::LogMessage(::kbt::LogLevel::k##level, __FILE__, \
                              __LINE__)

/// Fatal-on-false invariant check that survives NDEBUG builds.
#define KBT_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::kbt::internal::CheckFailed(#cond, __FILE__, __LINE__);            \
    }                                                                     \
  } while (0)

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace kbt

#endif  // KBT_COMMON_LOGGING_H_
