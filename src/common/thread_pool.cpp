#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace kbt {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) all_done_.Wait(mutex_);
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
  }
  task();
  {
    MutexLock lock(mutex_);
    --active_;
    if (queue_.empty() && active_ == 0) all_done_.NotifyAll();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) {
        // shutting_down_ and nothing left to run.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.NotifyAll();
    }
  }
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

struct TaskGroup::Entry {
  explicit Entry(std::function<void()> f) : fn(std::move(f)) {}
  std::function<void()> fn;
  /// First claimant (pool wrapper or helping waiter) runs fn; the loser
  /// no-ops. exchange() decides the race.
  std::atomic<bool> claimed{false};
};

struct TaskGroup::State {
  Mutex mutex;
  CondVar done;
  /// Tasks submitted and not yet finished (queued, claimed or running).
  size_t outstanding KBT_GUARDED_BY(mutex) = 0;
  /// Submission-ordered entries a helping waiter may claim. Entries the
  /// pool ran stay here (claimed) until a Wait() pops past them.
  std::deque<std::shared_ptr<Entry>> pending KBT_GUARDED_BY(mutex);
};

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  auto entry = std::make_shared<Entry>(std::move(task));
  {
    MutexLock lock(state_->mutex);
    ++state_->outstanding;
    state_->pending.push_back(entry);
  }
  // A parked waiter re-checks and can claim the new entry itself (pool
  // workers may all be busy or parked in their own joins).
  state_->done.NotifyAll();
  pool_->Submit([state = state_, entry] {
    if (entry->claimed.exchange(true)) return;  // A waiter ran it inline.
    entry->fn();
    MutexLock lock(state->mutex);
    if (--state->outstanding == 0) state->done.NotifyAll();
  });
}

void TaskGroup::Wait() {
  State& state = *state_;
  state.mutex.Lock();
  while (state.outstanding > 0) {
    // Donate this thread to the group's own not-yet-started tasks instead
    // of sleeping: a blocked waiter never strands its own queued work,
    // which makes nested joins on a saturated pool deadlock-free — while
    // never inlining unrelated (possibly long) pool tasks.
    std::shared_ptr<Entry> entry;
    while (!state.pending.empty()) {
      std::shared_ptr<Entry> candidate = std::move(state.pending.front());
      state.pending.pop_front();
      if (!candidate->claimed.exchange(true)) {
        entry = std::move(candidate);
        break;
      }
    }
    if (entry != nullptr) {
      // Hand-over-hand: drop the lock to run the claimed task, retake it
      // to update the shared count (the reason this function uses raw
      // Lock/Unlock instead of a MutexLock scope).
      state.mutex.Unlock();
      entry->fn();
      state.mutex.Lock();
      if (--state.outstanding == 0) state.done.NotifyAll();
      continue;
    }
    // Every unfinished task is claimed, i.e. running on some other thread;
    // park until the count drops or a new submission arrives to help with.
    while (state.outstanding > 0 && state.pending.empty()) {
      state.done.Wait(state.mutex);
    }
  }
  state.mutex.Unlock();
}

// ---------------------------------------------------------------------------
// SerialQueue
// ---------------------------------------------------------------------------

SerialQueue::SerialQueue(ThreadPool* pool) : pool_(pool) {}

SerialQueue::~SerialQueue() { Wait(); }

void SerialQueue::Submit(std::function<void()> task) {
  bool schedule = false;
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    if (!running_) {
      running_ = true;
      schedule = true;
    }
  }
  if (schedule) pool_->Submit([this] { DrainOne(); });
}

void SerialQueue::DrainOne() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) {
      running_ = false;
      idle_.NotifyAll();
      return;
    }
  }
  // Round-robin fairness: go to the back of the pool's queue between tasks
  // so other strands sharing the pool get a turn.
  pool_->Submit([this] { DrainOne(); });
}

void SerialQueue::Wait() {
  MutexLock lock(mutex_);
  while (running_ || !queue_.empty()) idle_.Wait(mutex_);
}

size_t SerialQueue::pending() const {
  MutexLock lock(mutex_);
  return queue_.size() + (running_ ? 1 : 0);
}

}  // namespace kbt
