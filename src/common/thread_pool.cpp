#include "common/thread_pool.h"

#include <algorithm>

namespace kbt {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    if (queue_.empty() && active_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and nothing left to run.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

struct TaskGroup::Entry {
  explicit Entry(std::function<void()> f) : fn(std::move(f)) {}
  std::function<void()> fn;
  /// First claimant (pool wrapper or helping waiter) runs fn; the loser
  /// no-ops. exchange() decides the race.
  std::atomic<bool> claimed{false};
};

struct TaskGroup::State {
  std::mutex mutex;
  std::condition_variable done;
  /// Tasks submitted and not yet finished (queued, claimed or running).
  size_t outstanding = 0;
  /// Submission-ordered entries a helping waiter may claim. Entries the
  /// pool ran stay here (claimed) until a Wait() pops past them.
  std::deque<std::shared_ptr<Entry>> pending;
};

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  auto entry = std::make_shared<Entry>(std::move(task));
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->outstanding;
    state_->pending.push_back(entry);
  }
  // A parked waiter re-checks and can claim the new entry itself (pool
  // workers may all be busy or parked in their own joins).
  state_->done.notify_all();
  pool_->Submit([state = state_, entry] {
    if (entry->claimed.exchange(true)) return;  // A waiter ran it inline.
    entry->fn();
    std::lock_guard<std::mutex> lock(state->mutex);
    if (--state->outstanding == 0) state->done.notify_all();
  });
}

void TaskGroup::Wait() {
  State& state = *state_;
  std::unique_lock<std::mutex> lock(state.mutex);
  while (state.outstanding > 0) {
    // Donate this thread to the group's own not-yet-started tasks instead
    // of sleeping: a blocked waiter never strands its own queued work,
    // which makes nested joins on a saturated pool deadlock-free — while
    // never inlining unrelated (possibly long) pool tasks.
    std::shared_ptr<Entry> entry;
    while (!state.pending.empty()) {
      std::shared_ptr<Entry> candidate = std::move(state.pending.front());
      state.pending.pop_front();
      if (!candidate->claimed.exchange(true)) {
        entry = std::move(candidate);
        break;
      }
    }
    if (entry != nullptr) {
      lock.unlock();
      entry->fn();
      lock.lock();
      if (--state.outstanding == 0) state.done.notify_all();
      continue;
    }
    // Every unfinished task is claimed, i.e. running on some other thread;
    // park until the count drops or a new submission arrives to help with.
    state.done.wait(lock, [&state] {
      return state.outstanding == 0 || !state.pending.empty();
    });
  }
}

// ---------------------------------------------------------------------------
// SerialQueue
// ---------------------------------------------------------------------------

SerialQueue::SerialQueue(ThreadPool* pool) : pool_(pool) {}

SerialQueue::~SerialQueue() { Wait(); }

void SerialQueue::Submit(std::function<void()> task) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    if (!running_) {
      running_ = true;
      schedule = true;
    }
  }
  if (schedule) pool_->Submit([this] { DrainOne(); });
}

void SerialQueue::DrainOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      running_ = false;
      idle_.notify_all();
      return;
    }
  }
  // Round-robin fairness: go to the back of the pool's queue between tasks
  // so other strands sharing the pool get a turn.
  pool_->Submit([this] { DrainOne(); });
}

void SerialQueue::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return !running_ && queue_.empty(); });
}

size_t SerialQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (running_ ? 1 : 0);
}

}  // namespace kbt
