#include "common/thread_pool.h"

#include <algorithm>

namespace kbt {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and nothing left to run.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace kbt
