#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kbt {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  state_ = SplitMix64(sm);
  inc_ = SplitMix64(sm) | 1u;
}

Rng Rng::Fork(uint64_t stream) const {
  uint64_t sm = state_ ^ (0xda3e39cb94b95bdbULL + stream * 0x9e3779b97f4a7c15ULL);
  const uint64_t new_state = SplitMix64(sm);
  const uint64_t new_inc = SplitMix64(sm);
  return Rng(new_state, new_inc);
}

uint32_t Rng::NextU32() {
  // PCG32 (XSH RR).
  const uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  const uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value;
  do {
    value = NextU64();
  } while (value >= limit);
  return lo + static_cast<int64_t>(value % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; one draw per call keeps forked streams independent.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = std::max(NextDouble(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = Gaussian(0.0, 1.0);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a, 1.0);
  const double y = Gamma(b, 1.0);
  if (x + y <= 0.0) return 0.5;
  return x / (x + y);
}

int Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  assert(n >= 1);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  cdf_.back() = 1.0;  // Guard against round-off at the top.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  pmf_.resize(n);
  prob_.resize(n);
  alias_.resize(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] = weights[i] / total;
    scaled[i] = pmf_[i] * static_cast<double>(n);
  }

  std::vector<size_t> small;
  std::vector<size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  const size_t n = prob_.size();
  const size_t column = static_cast<size_t>(rng.UniformInt(0, n - 1));
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace kbt
