#ifndef KBT_COMMON_RANDOM_H_
#define KBT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kbt {

/// Deterministic, fork-able pseudo-random generator (PCG32 core seeded via
/// SplitMix64). Every stochastic component of the library draws through an
/// Rng so that experiments are exactly reproducible given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent stream; forking with distinct `stream` values
  /// yields generators that do not correlate with the parent or each other.
  Rng Fork(uint64_t stream) const;

  uint32_t NextU32();
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian(double mean, double stddev);

  /// Gamma(shape, scale) via Marsaglia-Tsang (with the shape<1 boost).
  double Gamma(double shape, double scale);

  /// Beta(a, b) via two Gamma draws.
  double Beta(double a, double b);

  /// Poisson(lambda) via Knuth's method (lambda expected to be small; the
  /// corpus uses it for page out-degrees and hallucination counts).
  int Poisson(double lambda);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(0, i - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  Rng(uint64_t state, uint64_t inc) : state_(state), inc_(inc | 1u) {}

  uint64_t state_;
  uint64_t inc_;
};

/// Zipf(s) sampler over {0, 1, ..., n-1} with rank-1 most likely, backed by a
/// precomputed CDF (O(log n) per sample). Models the long-tailed size
/// distributions of Figure 5 (triples per URL / per extraction pattern).
class ZipfSampler {
 public:
  /// `n` must be >= 1; `exponent` is the Zipf skew (1.0 is classic).
  ZipfSampler(size_t n, double exponent);

  /// Draws an index in [0, n); index 0 is the most probable.
  size_t Sample(Rng& rng) const;

  /// Probability mass of index `i`.
  double Pmf(size_t i) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Walker/Vose alias-method sampler over an arbitrary discrete distribution;
/// O(1) per sample after O(n) setup. Used by the POPACCU false-value model
/// and by the corpus generator's categorical draws.
class AliasSampler {
 public:
  /// `weights` must be non-empty with non-negative entries and positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;

  /// Normalized probability of index `i`.
  double Pmf(size_t i) const { return pmf_[i]; }

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
  std::vector<double> pmf_;
};

}  // namespace kbt

#endif  // KBT_COMMON_RANDOM_H_
