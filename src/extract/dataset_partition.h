#ifndef KBT_EXTRACT_DATASET_PARTITION_H_
#define KBT_EXTRACT_DATASET_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "extract/raw_dataset.h"

namespace kbt::extract {

/// Deterministic website-keyed partitioning of an observation cube into K
/// disjoint shards — the scatter half of the sharded pipeline.
///
/// The partition key is the WEBSITE id, for a structural reason: source
/// groups never span websites (extract::SourceGroupInfo), so hashing
/// websites to shards keeps every source group — and therefore every
/// per-source / per-website KBT aggregate — entirely inside one shard.
/// Only (item, value) triples can span shards; the merge layer
/// (query::MergedSnapshot) resolves those with one documented rule.
///
/// Determinism: the shard of a website is a pure function of
/// (website id, num_shards, salt) through the repo's stable Mix64 hash —
/// no pointers, no iteration order, no platform dependence. Observations
/// keep their relative order inside each shard (a stable two-pass
/// count/displacement scatter), so the concatenation of the shards in
/// shard order is a deterministic permutation of the input and
/// re-partitioning the same cube is bit-for-bit identical.

struct PartitionOptions {
  /// Number of shards K (>= 1). K = 1 degenerates to a copy of the input.
  uint32_t num_shards = 1;
  /// Perturbs the website -> shard map (e.g. to rebalance a pathological
  /// cube). Part of the partition identity: the same salt must be used for
  /// every scatter against the same sharded pipeline.
  uint64_t salt = 0;
};

/// The shard owning `website`: Mix64-based, stable across runs, platforms
/// and standard libraries. Requires num_shards >= 1.
uint32_t ShardOfWebsite(kb::WebsiteId website, uint32_t num_shards,
                        uint64_t salt);

/// Result of PartitionDataset: K disjoint shard cubes plus the
/// observation -> shard map (parallel to the input's observation vector,
/// for parity checks and delta routing).
///
/// Every shard replicates the GLOBAL bookkeeping — meta counts
/// (num_websites, num_pages, ...), true_values and num_false_by_predicate —
/// so the dense id spaces stay globally aligned: shard s's website_kbt[w]
/// row means the same website w it means everywhere else, and inference
/// sees the same per-predicate n the unsharded run would. A shard may
/// therefore legitimately hold ZERO observations (fewer websites than
/// shards, or an unlucky hash); downstream layers must treat empty shards
/// as valid, empty worlds.
struct DatasetPartition {
  std::vector<RawDataset> shards;
  std::vector<uint32_t> shard_of_observation;
};

/// Splits `data` into options.num_shards disjoint shards by website.
/// InvalidArgument when num_shards == 0. O(observations), single pass per
/// phase (count, then scatter), no hashing of floats, no reordering within
/// a shard.
StatusOr<DatasetPartition> PartitionDataset(const RawDataset& data,
                                            const PartitionOptions& options);

/// Scatters a delta batch (e.g. an AppendObservations payload) into one
/// bucket per shard under the same key and ordering guarantees as
/// PartitionDataset. Buckets for shards the delta does not touch are
/// empty. Requires options.num_shards >= 1 (returns a single bucket copy
/// for K = 1).
std::vector<std::vector<RawObservation>> PartitionObservations(
    const std::vector<RawObservation>& observations,
    const PartitionOptions& options);

}  // namespace kbt::extract

#endif  // KBT_EXTRACT_DATASET_PARTITION_H_
