#include "extract/extractor_profile.h"

#include <algorithm>

#include "common/math.h"

namespace kbt::extract {

void InstantiatePatterns(ExtractorProfile& profile, int num_predicates,
                         kb::PatternId& next_pattern_id, Rng& rng) {
  profile.first_pattern = next_pattern_id;
  profile.patterns.clear();
  profile.patterns.reserve(static_cast<size_t>(num_predicates) *
                           static_cast<size_t>(profile.patterns_per_predicate));
  for (int p = 0; p < num_predicates; ++p) {
    for (int k = 0; k < profile.patterns_per_predicate; ++k) {
      PatternProfile pat;
      pat.id = next_pattern_id++;
      pat.predicate = static_cast<kb::PredicateId>(p);
      pat.recall_multiplier = Clamp(rng.Uniform(0.6, 1.0), 0.05, 1.0);
      pat.component_accuracy =
          Clamp(profile.component_accuracy + rng.Uniform(-0.08, 0.08), 0.3,
                0.995);
      profile.patterns.push_back(pat);
    }
  }
}

std::vector<ExtractorProfile> MakeDefaultExtractors(int count,
                                                    int num_predicates,
                                                    Rng& rng) {
  std::vector<ExtractorProfile> out;
  out.reserve(static_cast<size_t>(count));
  kb::PatternId next_pattern = 0;
  for (int i = 0; i < count; ++i) {
    ExtractorProfile e;
    e.id = static_cast<kb::ExtractorId>(i);
    e.name = "extractor_" + std::to_string(i);
    // Tiered fleet: ~1/3 strong, ~1/3 mid, ~1/3 weak, echoing the spread of
    // E1..E5 in Table 3.
    const int tier = i % 3;
    switch (tier) {
      case 0:  // strong
        e.page_coverage = rng.Uniform(0.6, 0.9);
        e.recall = rng.Uniform(0.7, 0.95);
        e.component_accuracy = rng.Uniform(0.93, 0.99);
        e.hallucination_rate = rng.Uniform(0.01, 0.1);
        e.confidence_calibration = rng.Uniform(0.7, 0.95);
        break;
      case 1:  // mid
        e.page_coverage = rng.Uniform(0.4, 0.7);
        e.recall = rng.Uniform(0.4, 0.7);
        e.component_accuracy = rng.Uniform(0.85, 0.95);
        e.hallucination_rate = rng.Uniform(0.1, 0.3);
        e.confidence_calibration = rng.Uniform(0.5, 0.8);
        break;
      default:  // weak
        e.page_coverage = rng.Uniform(0.2, 0.5);
        e.recall = rng.Uniform(0.15, 0.4);
        e.component_accuracy = rng.Uniform(0.6, 0.8);
        e.hallucination_rate = rng.Uniform(0.4, 1.0);
        e.confidence_calibration = rng.Uniform(0.2, 0.5);
        break;
    }
    e.type_error_fraction = rng.Uniform(0.3, 0.6);
    e.emits_confidence = (i % 4) != 3;  // Some extractors emit no confidence.
    // A handful of patterns per predicate; the simulator picks them with a
    // Zipf bias, so head patterns dominate while tail patterns extract only
    // a few triples each (the Figure 5 long tail).
    e.patterns_per_predicate = 3 + static_cast<int>(rng.UniformInt(0, 3));
    InstantiatePatterns(e, num_predicates, next_pattern, rng);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace kbt::extract
