#include "extract/observation_matrix.h"

#include <algorithm>
#include <unordered_map>

namespace kbt::extract {

namespace {

/// Temporary slot key during compilation.
struct SlotKey {
  uint32_t source;
  kb::DataItemId item;
  kb::ValueId value;
  bool operator==(const SlotKey& o) const {
    return source == o.source && item == o.item && value == o.value;
  }
};

struct SlotKeyHash {
  size_t operator()(const SlotKey& k) const {
    uint64_t h = k.item;
    h ^= (static_cast<uint64_t>(k.source) + 0x9e3779b9u) * 0xff51afd7ed558ccdULL;
    h ^= (static_cast<uint64_t>(k.value) + 0x85ebca6bu) * 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

struct EdgeRec {
  uint32_t slot;
  uint32_t group;
  float conf;
};

}  // namespace

StatusOr<CompiledMatrix> CompiledMatrix::Build(
    const RawDataset& data, const GroupAssignment& assignment) {
  const size_t n = data.observations.size();
  if (assignment.observation_source.size() != n ||
      assignment.observation_extractor.size() != n) {
    return Status::InvalidArgument(
        "assignment arrays must parallel the observation array");
  }
  if (assignment.source_infos.size() != assignment.num_source_groups) {
    return Status::InvalidArgument("source_infos size mismatch");
  }
  if (assignment.extractor_scopes.size() != assignment.num_extractor_groups) {
    return Status::InvalidArgument("extractor_scopes size mismatch");
  }

  CompiledMatrix m;
  m.num_sources_ = assignment.num_source_groups;
  m.num_extractor_groups_ = assignment.num_extractor_groups;
  m.source_infos_ = assignment.source_infos;
  m.extractor_scopes_ = assignment.extractor_scopes;

  // ---- Pass 1: discover slots ----
  std::unordered_map<SlotKey, uint32_t, SlotKeyHash> slot_index;
  slot_index.reserve(n * 2);
  struct ProtoSlot {
    SlotKey key;
    uint8_t provided;
  };
  std::vector<ProtoSlot> proto;
  proto.reserve(n);
  std::vector<EdgeRec> edges;
  edges.reserve(n);

  for (size_t o = 0; o < n; ++o) {
    const RawObservation& obs = data.observations[o];
    const uint32_t src = assignment.observation_source[o];
    const uint32_t grp = assignment.observation_extractor[o];
    if (src >= m.num_sources_) {
      return Status::OutOfRange("observation_source out of range");
    }
    if (grp >= m.num_extractor_groups_) {
      return Status::OutOfRange("observation_extractor out of range");
    }
    const SlotKey key{src, obs.item, obs.value};
    auto [it, inserted] = slot_index.emplace(
        key, static_cast<uint32_t>(proto.size()));
    if (inserted) {
      proto.push_back(ProtoSlot{key, obs.provided ? uint8_t{1} : uint8_t{0}});
    } else if (obs.provided) {
      proto[it->second].provided = 1;
    }
    edges.push_back(EdgeRec{it->second, grp, obs.confidence});
  }

  // ---- Pass 2: order slots by item, assign dense item indices ----
  const size_t num_slots = proto.size();
  std::vector<uint32_t> order(num_slots);
  for (uint32_t i = 0; i < num_slots; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&proto](uint32_t a, uint32_t b) {
    if (proto[a].key.item != proto[b].key.item) {
      return proto[a].key.item < proto[b].key.item;
    }
    if (proto[a].key.source != proto[b].key.source) {
      return proto[a].key.source < proto[b].key.source;
    }
    return proto[a].key.value < proto[b].key.value;
  });
  std::vector<uint32_t> new_id(num_slots);
  for (uint32_t pos = 0; pos < num_slots; ++pos) new_id[order[pos]] = pos;

  m.slot_source_.resize(num_slots);
  m.slot_item_.resize(num_slots);
  m.slot_value_.resize(num_slots);
  m.slot_website_.resize(num_slots);
  m.slot_predicate_.resize(num_slots);
  m.slot_provided_.resize(num_slots);

  kb::DataItemId prev_item = 0;
  for (uint32_t pos = 0; pos < num_slots; ++pos) {
    const ProtoSlot& p = proto[order[pos]];
    if (pos == 0 || p.key.item != prev_item) {
      m.item_ids_.push_back(p.key.item);
      m.item_offsets_.push_back(pos);
      m.item_num_false_.push_back(data.NumFalseValues(p.key.item));
      prev_item = p.key.item;
    }
    m.slot_source_[pos] = p.key.source;
    m.slot_item_[pos] = static_cast<uint32_t>(m.item_ids_.size() - 1);
    m.slot_value_[pos] = p.key.value;
    m.slot_website_[pos] = m.source_infos_[p.key.source].website;
    m.slot_predicate_[pos] = kb::DataItemPredicate(p.key.item);
    m.slot_provided_[pos] = p.provided;
  }
  m.item_offsets_.push_back(static_cast<uint32_t>(num_slots));

  // ---- Pass 3: collapse duplicate (slot, group) edges, keep max conf ----
  for (EdgeRec& e : edges) e.slot = new_id[e.slot];
  std::sort(edges.begin(), edges.end(), [](const EdgeRec& a, const EdgeRec& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    if (a.group != b.group) return a.group < b.group;
    return a.conf > b.conf;  // Max-conf first so unique keeps it.
  });
  std::vector<EdgeRec> dedup;
  dedup.reserve(edges.size());
  for (const EdgeRec& e : edges) {
    if (!dedup.empty() && dedup.back().slot == e.slot &&
        dedup.back().group == e.group) {
      continue;
    }
    dedup.push_back(e);
  }

  const size_t num_edges = dedup.size();
  m.slot_ext_offsets_.assign(num_slots + 1, 0);
  for (const EdgeRec& e : dedup) m.slot_ext_offsets_[e.slot + 1]++;
  for (size_t i = 1; i <= num_slots; ++i) {
    m.slot_ext_offsets_[i] += m.slot_ext_offsets_[i - 1];
  }
  m.ext_group_.resize(num_edges);
  m.ext_conf_.resize(num_edges);
  m.ext_slot_.resize(num_edges);
  // dedup is already sorted by slot, so a single linear copy fills CSR order.
  for (size_t i = 0; i < num_edges; ++i) {
    m.ext_group_[i] = dedup[i].group;
    m.ext_conf_[i] = dedup[i].conf;
    m.ext_slot_[i] = dedup[i].slot;
  }

  // ---- Pass 4: source CSR over slots ----
  m.source_offsets_.assign(m.num_sources_ + 1, 0);
  for (uint32_t s = 0; s < num_slots; ++s) {
    m.source_offsets_[m.slot_source_[s] + 1]++;
  }
  for (size_t i = 1; i <= m.num_sources_; ++i) {
    m.source_offsets_[i] += m.source_offsets_[i - 1];
  }
  m.source_slot_index_.resize(num_slots);
  {
    std::vector<uint32_t> cursor(m.source_offsets_.begin(),
                                 m.source_offsets_.end() - 1);
    for (uint32_t s = 0; s < num_slots; ++s) {
      m.source_slot_index_[cursor[m.slot_source_[s]]++] = s;
    }
  }

  // ---- Pass 5: extractor CSR over edges ----
  m.extractor_offsets_.assign(m.num_extractor_groups_ + 1, 0);
  for (size_t e = 0; e < num_edges; ++e) {
    m.extractor_offsets_[m.ext_group_[e] + 1]++;
  }
  for (size_t i = 1; i <= m.num_extractor_groups_; ++i) {
    m.extractor_offsets_[i] += m.extractor_offsets_[i - 1];
  }
  m.extractor_edge_index_.resize(num_edges);
  {
    std::vector<uint32_t> cursor(m.extractor_offsets_.begin(),
                                 m.extractor_offsets_.end() - 1);
    for (uint32_t e = 0; e < num_edges; ++e) {
      m.extractor_edge_index_[cursor[m.ext_group_[e]]++] = e;
    }
  }

  return m;
}

}  // namespace kbt::extract
