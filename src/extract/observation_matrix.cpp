#include "extract/observation_matrix.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace kbt::extract {

namespace {

/// Temporary slot key during compilation.
struct SlotKey {
  uint32_t source;
  kb::DataItemId item;
  kb::ValueId value;
  bool operator==(const SlotKey& o) const {
    return source == o.source && item == o.item && value == o.value;
  }
};

struct SlotKeyHash {
  size_t operator()(const SlotKey& k) const {
    uint64_t h = k.item;
    h ^= (static_cast<uint64_t>(k.source) + 0x9e3779b9u) * 0xff51afd7ed558ccdULL;
    h ^= (static_cast<uint64_t>(k.value) + 0x85ebca6bu) * 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

struct EdgeRec {
  uint32_t slot;
  uint32_t group;
  float conf;
};

}  // namespace

StatusOr<CompiledMatrix> CompiledMatrix::Build(
    const RawDataset& data, const GroupAssignment& assignment) {
  const size_t n = data.observations.size();
  if (assignment.observation_source.size() != n ||
      assignment.observation_extractor.size() != n) {
    return Status::InvalidArgument(
        "assignment arrays must parallel the observation array");
  }
  if (assignment.source_infos.size() != assignment.num_source_groups) {
    return Status::InvalidArgument("source_infos size mismatch");
  }
  if (assignment.extractor_scopes.size() != assignment.num_extractor_groups) {
    return Status::InvalidArgument("extractor_scopes size mismatch");
  }

  CompiledMatrix m;
  m.num_sources_ = assignment.num_source_groups;
  m.num_extractor_groups_ = assignment.num_extractor_groups;
  m.source_infos_ = assignment.source_infos;
  m.extractor_scopes_ = assignment.extractor_scopes;

  // ---- Pass 1: discover slots ----
  std::unordered_map<SlotKey, uint32_t, SlotKeyHash> slot_index;
  slot_index.reserve(n * 2);
  struct ProtoSlot {
    SlotKey key;
    uint8_t provided;
  };
  std::vector<ProtoSlot> proto;
  proto.reserve(n);
  std::vector<EdgeRec> edges;
  edges.reserve(n);

  for (size_t o = 0; o < n; ++o) {
    const RawObservation& obs = data.observations[o];
    const uint32_t src = assignment.observation_source[o];
    const uint32_t grp = assignment.observation_extractor[o];
    if (src >= m.num_sources_) {
      return Status::OutOfRange("observation_source out of range");
    }
    if (grp >= m.num_extractor_groups_) {
      return Status::OutOfRange("observation_extractor out of range");
    }
    const SlotKey key{src, obs.item, obs.value};
    auto [it, inserted] = slot_index.emplace(
        key, static_cast<uint32_t>(proto.size()));
    if (inserted) {
      proto.push_back(ProtoSlot{key, obs.provided ? uint8_t{1} : uint8_t{0}});
    } else if (obs.provided) {
      proto[it->second].provided = 1;
    }
    edges.push_back(EdgeRec{it->second, grp, obs.confidence});
  }

  // ---- Pass 2: order slots by item, assign dense item indices ----
  const size_t num_slots = proto.size();
  std::vector<uint32_t> order(num_slots);
  for (uint32_t i = 0; i < num_slots; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&proto](uint32_t a, uint32_t b) {
    if (proto[a].key.item != proto[b].key.item) {
      return proto[a].key.item < proto[b].key.item;
    }
    if (proto[a].key.source != proto[b].key.source) {
      return proto[a].key.source < proto[b].key.source;
    }
    return proto[a].key.value < proto[b].key.value;
  });
  std::vector<uint32_t> new_id(num_slots);
  for (uint32_t pos = 0; pos < num_slots; ++pos) new_id[order[pos]] = pos;

  m.slot_source_.resize(num_slots);
  m.slot_item_.resize(num_slots);
  m.slot_value_.resize(num_slots);
  m.slot_website_.resize(num_slots);
  m.slot_predicate_.resize(num_slots);
  m.slot_provided_.resize(num_slots);

  kb::DataItemId prev_item = 0;
  for (uint32_t pos = 0; pos < num_slots; ++pos) {
    const ProtoSlot& p = proto[order[pos]];
    if (pos == 0 || p.key.item != prev_item) {
      m.item_ids_.push_back(p.key.item);
      m.item_offsets_.push_back(pos);
      m.item_num_false_.push_back(data.NumFalseValues(p.key.item));
      prev_item = p.key.item;
    }
    m.slot_source_[pos] = p.key.source;
    m.slot_item_[pos] = static_cast<uint32_t>(m.item_ids_.size() - 1);
    m.slot_value_[pos] = p.key.value;
    m.slot_website_[pos] = m.source_infos_[p.key.source].website;
    m.slot_predicate_[pos] = kb::DataItemPredicate(p.key.item);
    m.slot_provided_[pos] = p.provided;
  }
  m.item_offsets_.push_back(static_cast<uint32_t>(num_slots));

  // ---- Pass 3: collapse duplicate (slot, group) edges, keep max conf ----
  for (EdgeRec& e : edges) e.slot = new_id[e.slot];
  std::sort(edges.begin(), edges.end(), [](const EdgeRec& a, const EdgeRec& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    if (a.group != b.group) return a.group < b.group;
    return a.conf > b.conf;  // Max-conf first so unique keeps it.
  });
  std::vector<EdgeRec> dedup;
  dedup.reserve(edges.size());
  for (const EdgeRec& e : edges) {
    if (!dedup.empty() && dedup.back().slot == e.slot &&
        dedup.back().group == e.group) {
      continue;
    }
    dedup.push_back(e);
  }

  const size_t num_edges = dedup.size();
  m.slot_ext_offsets_.assign(num_slots + 1, 0);
  for (const EdgeRec& e : dedup) m.slot_ext_offsets_[e.slot + 1]++;
  for (size_t i = 1; i <= num_slots; ++i) {
    m.slot_ext_offsets_[i] += m.slot_ext_offsets_[i - 1];
  }
  m.ext_group_.resize(num_edges);
  m.ext_conf_.resize(num_edges);
  m.ext_slot_.resize(num_edges);
  // dedup is already sorted by slot, so a single linear copy fills CSR order.
  for (size_t i = 0; i < num_edges; ++i) {
    m.ext_group_[i] = dedup[i].group;
    m.ext_conf_[i] = dedup[i].conf;
    m.ext_slot_[i] = dedup[i].slot;
  }

  // ---- Pass 4: source CSR over slots ----
  m.RebuildSourceCsr();

  // ---- Pass 5: extractor CSR over edges ----
  m.RebuildExtractorCsr();

  return m;
}

void CompiledMatrix::RebuildSourceCsr() {
  const size_t num_slots = slot_source_.size();
  source_offsets_.assign(num_sources_ + 1, 0);
  for (size_t s = 0; s < num_slots; ++s) {
    source_offsets_[slot_source_[s] + 1]++;
  }
  for (size_t i = 1; i <= num_sources_; ++i) {
    source_offsets_[i] += source_offsets_[i - 1];
  }
  source_slot_index_.resize(num_slots);
  std::vector<uint32_t> cursor(source_offsets_.begin(),
                               source_offsets_.end() - 1);
  for (uint32_t s = 0; s < num_slots; ++s) {
    source_slot_index_[cursor[slot_source_[s]]++] = s;
  }
}

void CompiledMatrix::RebuildExtractorCsr() {
  const size_t num_edges = ext_group_.size();
  extractor_offsets_.assign(num_extractor_groups_ + 1, 0);
  for (size_t e = 0; e < num_edges; ++e) {
    extractor_offsets_[ext_group_[e] + 1]++;
  }
  for (size_t i = 1; i <= num_extractor_groups_; ++i) {
    extractor_offsets_[i] += extractor_offsets_[i - 1];
  }
  extractor_edge_index_.resize(num_edges);
  std::vector<uint32_t> cursor(extractor_offsets_.begin(),
                               extractor_offsets_.end() - 1);
  for (uint32_t e = 0; e < num_edges; ++e) {
    extractor_edge_index_[cursor[ext_group_[e]]++] = e;
  }
}

std::optional<uint32_t> CompiledMatrix::FindSlot(uint32_t source,
                                                 kb::DataItemId item,
                                                 kb::ValueId value) const {
  const auto item_it =
      std::lower_bound(item_ids_.begin(), item_ids_.end(), item);
  if (item_it == item_ids_.end() || *item_it != item) return std::nullopt;
  const size_t i = static_cast<size_t>(item_it - item_ids_.begin());
  // Slots of one item are sorted by (source, value).
  uint32_t lo = item_offsets_[i];
  uint32_t hi = item_offsets_[i + 1];
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (std::pair(slot_source_[mid], slot_value_[mid]) <
        std::pair(source, value)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < item_offsets_[i + 1] && slot_source_[lo] == source &&
      slot_value_[lo] == value) {
    return lo;
  }
  return std::nullopt;
}

StatusOr<std::vector<uint32_t>> CompiledMatrix::MapObservationEdges(
    const RawDataset& data, const GroupAssignment& assignment) const {
  const size_t n = data.observations.size();
  if (assignment.observation_source.size() != n ||
      assignment.observation_extractor.size() != n) {
    return Status::InvalidArgument(
        "assignment arrays must parallel the observation array");
  }
  std::vector<uint32_t> edges(n);
  for (size_t o = 0; o < n; ++o) {
    const RawObservation& obs = data.observations[o];
    const uint32_t src = assignment.observation_source[o];
    const uint32_t grp = assignment.observation_extractor[o];
    const std::optional<uint32_t> slot = FindSlot(src, obs.item, obs.value);
    if (!slot) {
      return Status::InvalidArgument(
          "observation " + std::to_string(o) +
          " has no compiled slot — the matrix does not correspond to this "
          "dataset/assignment pair");
    }
    const auto [begin, end] = SlotExtractions(*slot);
    uint32_t edge = kb::kInvalidId;
    for (uint32_t e = begin; e < end; ++e) {
      if (ext_group_[e] == grp) {
        edge = e;
        break;
      }
    }
    if (edge == kb::kInvalidId) {
      return Status::InvalidArgument(
          "observation " + std::to_string(o) +
          " has no compiled (slot, extractor group) edge — the matrix does "
          "not correspond to this dataset/assignment pair");
    }
    edges[o] = edge;
  }
  return edges;
}

StatusOr<AppendOutcome> CompiledMatrix::Append(
    const RawDataset& data, const ObservationDelta& delta,
    const GroupAssignment& assignment) {
  const size_t n = data.observations.size();
  const size_t nb = delta.base_observations;
  if (nb > n) {
    return Status::InvalidArgument(
        "delta.base_observations exceeds the dataset size");
  }
  if (assignment.observation_source.size() != n ||
      assignment.observation_extractor.size() != n) {
    return Status::InvalidArgument(
        "assignment arrays must parallel the observation array");
  }
  if (assignment.source_infos.size() != assignment.num_source_groups) {
    return Status::InvalidArgument("source_infos size mismatch");
  }
  if (assignment.extractor_scopes.size() != assignment.num_extractor_groups) {
    return Status::InvalidArgument("extractor_scopes size mismatch");
  }

  // ---- Fallback detection: the compiled groups must be a prefix of the
  // new assignment's groups, with identical metadata. A shrunk count or a
  // changed scope/info means the grouping was recomputed wholesale (e.g.
  // SPLITANDMERGE re-bucketing) and patching is unsound.
  if (assignment.num_source_groups < num_sources_ ||
      assignment.num_extractor_groups < num_extractor_groups_) {
    return AppendOutcome::kRebuildRequired;
  }
  if (!std::equal(source_infos_.begin(), source_infos_.end(),
                  assignment.source_infos.begin())) {
    return AppendOutcome::kRebuildRequired;
  }
  if (!std::equal(extractor_scopes_.begin(), extractor_scopes_.end(),
                  assignment.extractor_scopes.begin())) {
    return AppendOutcome::kRebuildRequired;
  }

  // ---- Scan the delta: split observations into edges on existing slots,
  // brand-new slots, and provided-flag updates. All validation happens
  // before any mutation so a rejected delta leaves the matrix untouched.
  const size_t old_num_slots = slot_source_.size();
  struct ProtoSlot {
    SlotKey key;
    uint8_t provided;
  };
  std::unordered_map<SlotKey, uint32_t, SlotKeyHash> new_slot_index;
  std::vector<ProtoSlot> protos;
  // Edge slot ids: existing slot id, or old_num_slots + proto index.
  std::vector<EdgeRec> delta_edges;
  delta_edges.reserve(n - nb);
  std::vector<uint32_t> provided_slots;  // Existing slots turning provided.

  for (size_t o = nb; o < n; ++o) {
    const RawObservation& obs = data.observations[o];
    const uint32_t src = assignment.observation_source[o];
    const uint32_t grp = assignment.observation_extractor[o];
    if (src >= assignment.num_source_groups) {
      return Status::OutOfRange("observation_source out of range");
    }
    if (grp >= assignment.num_extractor_groups) {
      return Status::OutOfRange("observation_extractor out of range");
    }
    uint32_t slot_ref;
    if (const std::optional<uint32_t> existing =
            FindSlot(src, obs.item, obs.value)) {
      slot_ref = *existing;
      if (obs.provided && !slot_provided_[*existing]) {
        provided_slots.push_back(*existing);
      }
    } else {
      const SlotKey key{src, obs.item, obs.value};
      auto [it, inserted] = new_slot_index.emplace(
          key, static_cast<uint32_t>(protos.size()));
      if (inserted) {
        protos.push_back(
            ProtoSlot{key, obs.provided ? uint8_t{1} : uint8_t{0}});
      } else if (obs.provided) {
        protos[it->second].provided = 1;
      }
      slot_ref = old_num_slots + it->second;
    }
    delta_edges.push_back(EdgeRec{slot_ref, grp, obs.confidence});
  }

  // ---- Fast path: nothing structural changed — only confidence maxing and
  // provided updates on existing (slot, group) pairs. O(delta log n).
  const bool groups_unchanged =
      assignment.num_source_groups == num_sources_ &&
      assignment.num_extractor_groups == num_extractor_groups_;
  if (protos.empty() && groups_unchanged) {
    // An edge is in-place when its (slot, group) pair already exists.
    std::vector<std::pair<uint32_t, float>> in_place;  // (edge id, conf)
    in_place.reserve(delta_edges.size());
    bool all_existing = true;
    for (const EdgeRec& e : delta_edges) {
      const uint32_t b = slot_ext_offsets_[e.slot];
      const uint32_t end = slot_ext_offsets_[e.slot + 1];
      const auto it = std::lower_bound(ext_group_.begin() + b,
                                       ext_group_.begin() + end, e.group);
      if (it != ext_group_.begin() + end && *it == e.group) {
        in_place.emplace_back(
            static_cast<uint32_t>(it - ext_group_.begin()), e.conf);
      } else {
        all_existing = false;
        break;
      }
    }
    if (all_existing) {
      for (const auto& [edge, conf] : in_place) {
        ext_conf_[edge] = std::max(ext_conf_[edge], conf);
      }
      for (const uint32_t s : provided_slots) slot_provided_[s] = 1;
      return AppendOutcome::kPatched;
    }
  }

  // ---- General path: merge-insert new slots/edges at their sorted
  // positions. Linear in the matrix size but free of the hashing and
  // O(n log n) sorting a full Build pays; the delta-side work is
  // O(delta log delta).
  for (const uint32_t s : provided_slots) slot_provided_[s] = 1;

  // Order new protos by (item, source, value) — the global slot order.
  std::vector<uint32_t> proto_order(protos.size());
  for (uint32_t i = 0; i < protos.size(); ++i) proto_order[i] = i;
  std::sort(proto_order.begin(), proto_order.end(),
            [&protos](uint32_t a, uint32_t b) {
              const SlotKey& ka = protos[a].key;
              const SlotKey& kb_ = protos[b].key;
              if (ka.item != kb_.item) return ka.item < kb_.item;
              if (ka.source != kb_.source) return ka.source < kb_.source;
              return ka.value < kb_.value;
            });

  // Merge walk old slots with sorted protos: assign final slot ids.
  const size_t total_slots = old_num_slots + protos.size();
  std::vector<uint32_t> old_to_new(old_num_slots);
  std::vector<uint32_t> proto_to_new(protos.size());
  {
    size_t io = 0;  // old slot cursor
    size_t ip = 0;  // proto_order cursor
    for (uint32_t pos = 0; pos < total_slots; ++pos) {
      bool take_old;
      if (io == old_num_slots) {
        take_old = false;
      } else if (ip == protos.size()) {
        take_old = true;
      } else {
        const SlotKey& k = protos[proto_order[ip]].key;
        const kb::DataItemId old_item = item_ids_[slot_item_[io]];
        take_old = std::tuple(old_item, slot_source_[io], slot_value_[io]) <
                   std::tuple(k.item, k.source, k.value);
      }
      if (take_old) {
        old_to_new[io++] = pos;
      } else {
        proto_to_new[proto_order[ip++]] = pos;
      }
    }
  }

  // ---- Rebuild slot + item arrays in merged order.
  std::vector<uint32_t> slot_source(total_slots);
  std::vector<uint32_t> slot_item(total_slots);
  std::vector<kb::ValueId> slot_value(total_slots);
  std::vector<uint32_t> slot_website(total_slots);
  std::vector<uint32_t> slot_predicate(total_slots);
  std::vector<uint8_t> slot_provided(total_slots);
  std::vector<kb::DataItemId> item_ids;
  std::vector<int> item_num_false;
  std::vector<uint32_t> item_offsets;
  item_ids.reserve(item_ids_.size());
  item_num_false.reserve(item_ids_.size());
  item_offsets.reserve(item_ids_.size() + 1);
  {
    size_t io = 0;
    size_t ip = 0;
    kb::DataItemId prev_item = 0;
    for (uint32_t pos = 0; pos < total_slots; ++pos) {
      kb::DataItemId item;
      if (io < old_num_slots && old_to_new[io] == pos) {
        item = item_ids_[slot_item_[io]];
        slot_source[pos] = slot_source_[io];
        slot_value[pos] = slot_value_[io];
        slot_website[pos] = slot_website_[io];
        slot_predicate[pos] = slot_predicate_[io];
        slot_provided[pos] = slot_provided_[io];
        ++io;
      } else {
        const ProtoSlot& p = protos[proto_order[ip]];
        item = p.key.item;
        slot_source[pos] = p.key.source;
        slot_value[pos] = p.key.value;
        slot_website[pos] = assignment.source_infos[p.key.source].website;
        slot_predicate[pos] = kb::DataItemPredicate(p.key.item);
        slot_provided[pos] = p.provided;
        ++ip;
      }
      if (pos == 0 || item != prev_item) {
        item_ids.push_back(item);
        item_offsets.push_back(pos);
        item_num_false.push_back(data.NumFalseValues(item));
        prev_item = item;
      }
      slot_item[pos] = static_cast<uint32_t>(item_ids.size() - 1);
    }
    item_offsets.push_back(static_cast<uint32_t>(total_slots));
  }

  // ---- Merge edges per final slot: old per-slot lists are sorted by group
  // and deduped; sort the delta edges the same way and zip, keeping the max
  // confidence on (slot, group) collisions.
  for (EdgeRec& e : delta_edges) {
    e.slot = e.slot < old_num_slots ? old_to_new[e.slot]
                                    : proto_to_new[e.slot - old_num_slots];
  }
  std::sort(delta_edges.begin(), delta_edges.end(),
            [](const EdgeRec& a, const EdgeRec& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.group != b.group) return a.group < b.group;
              return a.conf > b.conf;  // Max-conf first so dedup keeps it.
            });

  std::vector<uint32_t> ext_group;
  std::vector<float> ext_conf;
  std::vector<uint32_t> ext_slot;
  std::vector<uint32_t> slot_ext_offsets;
  ext_group.reserve(ext_group_.size() + delta_edges.size());
  ext_conf.reserve(ext_group.capacity());
  ext_slot.reserve(ext_group.capacity());
  slot_ext_offsets.reserve(total_slots + 1);
  slot_ext_offsets.push_back(0);
  {
    size_t io = 0;  // old slot cursor (old edges live under old slot ids)
    size_t id = 0;  // delta edge cursor
    for (uint32_t pos = 0; pos < total_slots; ++pos) {
      uint32_t ob = 0;
      uint32_t oe = 0;
      if (io < old_num_slots && old_to_new[io] == pos) {
        ob = slot_ext_offsets_[io];
        oe = slot_ext_offsets_[io + 1];
        ++io;
      }
      while (ob < oe || (id < delta_edges.size() &&
                         delta_edges[id].slot == pos)) {
        const bool has_delta =
            id < delta_edges.size() && delta_edges[id].slot == pos;
        uint32_t group;
        float conf;
        if (ob < oe && (!has_delta || ext_group_[ob] <= delta_edges[id].group)) {
          group = ext_group_[ob];
          conf = ext_conf_[ob];
          if (has_delta && delta_edges[id].group == group) {
            conf = std::max(conf, delta_edges[id].conf);
          }
          ++ob;
        } else {
          group = delta_edges[id].group;
          conf = delta_edges[id].conf;
        }
        // Consume every delta duplicate of this (slot, group); the sort put
        // the max confidence first, but an old edge may still beat it.
        while (id < delta_edges.size() && delta_edges[id].slot == pos &&
               delta_edges[id].group == group) {
          ++id;
        }
        ext_group.push_back(group);
        ext_conf.push_back(conf);
        ext_slot.push_back(pos);
      }
      slot_ext_offsets.push_back(static_cast<uint32_t>(ext_group.size()));
    }
  }

  // ---- Commit: adopt the grown group metadata, swap in the merged arrays,
  // regenerate the group-side CSRs (same helpers as Build).
  num_sources_ = assignment.num_source_groups;
  num_extractor_groups_ = assignment.num_extractor_groups;
  source_infos_ = assignment.source_infos;
  extractor_scopes_ = assignment.extractor_scopes;
  slot_source_ = std::move(slot_source);
  slot_item_ = std::move(slot_item);
  slot_value_ = std::move(slot_value);
  slot_website_ = std::move(slot_website);
  slot_predicate_ = std::move(slot_predicate);
  slot_provided_ = std::move(slot_provided);
  slot_ext_offsets_ = std::move(slot_ext_offsets);
  ext_group_ = std::move(ext_group);
  ext_conf_ = std::move(ext_conf);
  ext_slot_ = std::move(ext_slot);
  item_ids_ = std::move(item_ids);
  item_num_false_ = std::move(item_num_false);
  item_offsets_ = std::move(item_offsets);
  RebuildSourceCsr();
  RebuildExtractorCsr();
  return AppendOutcome::kPatched;
}

}  // namespace kbt::extract
