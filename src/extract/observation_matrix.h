#ifndef KBT_EXTRACT_OBSERVATION_MATRIX_H_
#define KBT_EXTRACT_OBSERVATION_MATRIX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "extract/raw_dataset.h"
#include "kb/ids.h"

namespace kbt::cache {
/// Serialization access shim (src/cache/artifact_codec.cpp): the one place
/// allowed to visit CompiledMatrix's private arrays, so the persistent
/// artifact codec can (de)serialize them without widening the public API.
struct MatrixFields;
}  // namespace kbt::cache

namespace kbt::extract {

/// Wildcard marker for scope dimensions.
inline constexpr uint32_t kAnyScope = kb::kInvalidId;

/// The (predicate, website) region an extractor group is responsible for.
/// Absence votes (Eq. 13/14) are cast by every group whose scope covers a
/// slot — an extractor that *could* have extracted a triple but did not is
/// evidence against it. Scopes let merged groups cover wider regions and
/// keep the absence universe well-defined at any granularity:
///   finest  <extractor, pattern, predicate, website>: one predicate+website;
///   merged  <extractor, pattern, predicate>          : one predicate, any site;
///   merged  <extractor, pattern> / <extractor>       : everything.
struct ExtractorScope {
  uint32_t predicate = kAnyScope;
  uint32_t website = kAnyScope;
  /// Down-weights absence votes of split sub-groups (a bucket holding 1/k of
  /// a giant group casts 1/k of its absence evidence, so splitting does not
  /// multiply absence mass k times).
  double absence_weight = 1.0;

  bool operator==(const ExtractorScope& o) const {
    return predicate == o.predicate && website == o.website &&
           absence_weight == o.absence_weight;
  }
};

/// Metadata of one source group (a "web source" w at the chosen
/// granularity). Groups never span websites, so each carries its site.
struct SourceGroupInfo {
  uint32_t website = kb::kInvalidId;

  bool operator==(const SourceGroupInfo& o) const {
    return website == o.website;
  }
};

/// Mapping from raw observations to source groups and extractor groups.
/// Produced by the granularity layer (finest / page / site / SPLITANDMERGE)
/// and consumed by CompiledMatrix::Build.
struct GroupAssignment {
  uint32_t num_source_groups = 0;
  uint32_t num_extractor_groups = 0;
  /// Per raw observation (parallel to RawDataset::observations).
  std::vector<uint32_t> observation_source;
  std::vector<uint32_t> observation_extractor;
  std::vector<SourceGroupInfo> source_infos;
  std::vector<ExtractorScope> extractor_scopes;

  /// Field-wise equality: used by the cache round-trip/parity tests.
  bool operator==(const GroupAssignment& o) const {
    return num_source_groups == o.num_source_groups &&
           num_extractor_groups == o.num_extractor_groups &&
           observation_source == o.observation_source &&
           observation_extractor == o.observation_extractor &&
           source_infos == o.source_infos &&
           extractor_scopes == o.extractor_scopes;
  }
};

/// A batch of observations appended to an already-compiled cube: the first
/// `base_observations` entries of the dataset were compiled into the matrix,
/// everything after them is new and still needs to be folded in.
struct ObservationDelta {
  size_t base_observations = 0;
};

/// What CompiledMatrix::Append did with a delta.
enum class AppendOutcome {
  /// The CSR structures were patched in place; the matrix now equals a full
  /// Build over the grown dataset, bit for bit.
  kPatched = 0,
  /// The assignment invalidated the compiled groups (shrunk group counts or
  /// changed metadata of an existing group, e.g. after SPLITANDMERGE
  /// re-bucketing); the caller must Build() from scratch. The matrix is
  /// left untouched.
  kRebuildRequired = 1,
};

/// The compiled, index-complete form of the observation cube at a fixed
/// granularity. All inference (multi-layer and single-layer) runs on this.
///
/// Terminology:
///  * a *slot* is one (source w, data item d, value v) triple — the unit
///    carrying the latent C_wdv;
///  * an *extraction* is one (slot, extractor group, confidence) edge — the
///    observed X_ewdv (confidence-weighted, Section 3.5);
///  * an *item* is one data item d, whose slots across sources vote on V_d.
class CompiledMatrix {
 public:
  /// Compiles `data` under `assignment`. Duplicate (slot, extractor) edges
  /// are collapsed keeping the maximum confidence.
  static StatusOr<CompiledMatrix> Build(const RawDataset& data,
                                        const GroupAssignment& assignment);

  /// Folds the observations past `delta.base_observations` into this matrix
  /// without recompiling the base: existing (slot, group) edges keep the max
  /// confidence, new edges/slots/items/groups are merge-inserted at their
  /// sorted positions, and the per-source / per-extractor CSR indices are
  /// regenerated. The result is bit-for-bit identical to
  /// Build(data, assignment).
  ///
  /// Preconditions: this matrix was built from the first
  /// `delta.base_observations` entries of `data`, and the first
  /// `delta.base_observations` entries of `assignment` equal the assignment
  /// it was built with (granularity::AssignmentExtender guarantees this).
  /// Returns kRebuildRequired — leaving the matrix untouched — when the
  /// assignment shrank a group count or changed metadata of an existing
  /// group, which invalidates the compiled structure wholesale.
  StatusOr<AppendOutcome> Append(const RawDataset& data,
                                 const ObservationDelta& delta,
                                 const GroupAssignment& assignment);

  // ---- Sizes ----
  size_t num_slots() const { return slot_source_.size(); }
  size_t num_items() const { return item_ids_.size(); }
  size_t num_extractions() const { return ext_group_.size(); }
  uint32_t num_sources() const { return num_sources_; }
  uint32_t num_extractor_groups() const { return num_extractor_groups_; }

  // ---- Per-slot ----
  uint32_t slot_source(size_t s) const { return slot_source_[s]; }
  uint32_t slot_item(size_t s) const { return slot_item_[s]; }
  kb::ValueId slot_value(size_t s) const { return slot_value_[s]; }
  uint32_t slot_website(size_t s) const { return slot_website_[s]; }
  uint32_t slot_predicate(size_t s) const { return slot_predicate_[s]; }

  /// Whole-column views of the per-slot arrays, for the SoA EM kernels
  /// (src/kernels/): the kernels stream these with gathers instead of
  /// calling the per-element accessors in a loop.
  const std::vector<uint32_t>& slot_sources() const { return slot_source_; }
  const std::vector<kb::ValueId>& slot_values() const { return slot_value_; }
  /// Ground-truth C* for synthetic data: > 0 when any constituent raw
  /// observation was really provided by the page(s) behind this slot.
  bool slot_provided_truth(size_t s) const { return slot_provided_[s] != 0; }

  /// Extractions of slot `s`: [begin, end) into ext_group()/ext_conf().
  std::pair<uint32_t, uint32_t> SlotExtractions(size_t s) const {
    return {slot_ext_offsets_[s], slot_ext_offsets_[s + 1]};
  }
  const std::vector<uint32_t>& ext_group() const { return ext_group_; }
  const std::vector<float>& ext_conf() const { return ext_conf_; }
  /// Slot owning extraction edge `e` (inverse of SlotExtractions).
  uint32_t ext_slot(size_t e) const { return ext_slot_[e]; }
  /// Whole-column view of ext_slot, for the SoA EM kernels.
  const std::vector<uint32_t>& ext_slots() const { return ext_slot_; }

  /// Maps every raw observation to the extraction edge it was compiled into:
  /// result[i] is the edge id (index into ext_group()/ext_conf()) whose
  /// (slot, extractor group) pair observation i contributed to. Multiple
  /// observations map to the same edge when duplicate (slot, group) pairs
  /// were collapsed by max-confidence dedup. Requires that this matrix
  /// equals Build(data, assignment) — InvalidArgument when an observation's
  /// slot or edge is absent (stale assignment / wrong dataset). Used by the
  /// streaming layer to turn per-observation time-decay weights into
  /// per-edge weights; O(N log S + total edge-scan).
  StatusOr<std::vector<uint32_t>> MapObservationEdges(
      const RawDataset& data, const GroupAssignment& assignment) const;

  // ---- Per-item ----
  kb::DataItemId item_id(size_t i) const { return item_ids_[i]; }
  int item_num_false(size_t i) const { return item_num_false_[i]; }
  /// Slots of item `i`: [begin, end) into slot indices (slots are stored
  /// contiguously by item, so this is a plain range of slot ids).
  std::pair<uint32_t, uint32_t> ItemSlots(size_t i) const {
    return {item_offsets_[i], item_offsets_[i + 1]};
  }

  // ---- Per-source ----
  /// Slot ids of source group `w`.
  std::pair<uint32_t, uint32_t> SourceSlots(uint32_t w) const {
    return {source_offsets_[w], source_offsets_[w + 1]};
  }
  const std::vector<uint32_t>& source_slot_index() const {
    return source_slot_index_;
  }
  const SourceGroupInfo& source_info(uint32_t w) const {
    return source_infos_[w];
  }

  // ---- Per-extractor-group ----
  /// Extraction edge ids of group `e`.
  std::pair<uint32_t, uint32_t> ExtractorEdges(uint32_t e) const {
    return {extractor_offsets_[e], extractor_offsets_[e + 1]};
  }
  const std::vector<uint32_t>& extractor_edge_index() const {
    return extractor_edge_index_;
  }
  const ExtractorScope& extractor_scope(uint32_t e) const {
    return extractor_scopes_[e];
  }

 private:
  /// The persistent-cache codec serializes the private arrays verbatim
  /// (docs/artifact-format.md); nothing else may touch them from outside.
  friend struct ::kbt::cache::MatrixFields;

  /// Slot id of (source, item, value) if compiled, else nullopt. O(log) via
  /// the sorted slot order (items ascending, then source, then value).
  std::optional<uint32_t> FindSlot(uint32_t source, kb::DataItemId item,
                                   kb::ValueId value) const;

  /// Regenerate source_offsets_/source_slot_index_ from the slot arrays and
  /// extractor_offsets_/extractor_edge_index_ from the edge arrays. Shared
  /// by Build and Append so both produce the identical CSR layout.
  void RebuildSourceCsr();
  void RebuildExtractorCsr();

  uint32_t num_sources_ = 0;
  uint32_t num_extractor_groups_ = 0;

  // Slots, stored contiguously grouped by item.
  std::vector<uint32_t> slot_source_;
  std::vector<uint32_t> slot_item_;
  std::vector<kb::ValueId> slot_value_;
  std::vector<uint32_t> slot_website_;
  std::vector<uint32_t> slot_predicate_;
  std::vector<uint8_t> slot_provided_;
  std::vector<uint32_t> slot_ext_offsets_;

  // Extraction edges, aligned with slot_ext_offsets_.
  std::vector<uint32_t> ext_group_;
  std::vector<float> ext_conf_;
  std::vector<uint32_t> ext_slot_;

  // Items.
  std::vector<kb::DataItemId> item_ids_;
  std::vector<int> item_num_false_;
  std::vector<uint32_t> item_offsets_;

  // Source CSR.
  std::vector<uint32_t> source_offsets_;
  std::vector<uint32_t> source_slot_index_;
  std::vector<SourceGroupInfo> source_infos_;

  // Extractor CSR (indices into extraction edges).
  std::vector<uint32_t> extractor_offsets_;
  std::vector<uint32_t> extractor_edge_index_;
  std::vector<ExtractorScope> extractor_scopes_;
};

}  // namespace kbt::extract

#endif  // KBT_EXTRACT_OBSERVATION_MATRIX_H_
