#ifndef KBT_EXTRACT_RAW_DATASET_H_
#define KBT_EXTRACT_RAW_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kb/ids.h"

namespace kbt::extract {

/// One extraction event: extractor `extractor` using `pattern` claims that
/// page `page` (of `website`) states (item, value), with a confidence score.
/// `provided` is the synthetic ground truth C*_wdv (whether the page really
/// states that triple); it is hidden from inference and used only for
/// evaluation.
struct RawObservation {
  kb::ExtractorId extractor = kb::kInvalidId;
  kb::PatternId pattern = kb::kInvalidId;
  kb::WebsiteId website = kb::kInvalidId;
  kb::PageId page = kb::kInvalidId;
  kb::DataItemId item = 0;
  kb::ValueId value = kb::kInvalidId;
  float confidence = 1.0f;
  bool provided = false;
};

/// The full set of extraction events for one experiment, together with the
/// bookkeeping inference needs (domain sizes) and evaluation needs (true
/// values). This is the X = {X_ewdv} of the paper in sparse form; everything
/// downstream (granularity selection, compilation, inference) reads it.
struct RawDataset {
  std::vector<RawObservation> observations;

  /// Optional per-observation ingestion timestamps (seconds, caller-defined
  /// epoch), parallel to `observations`. Either empty (no temporal
  /// information — every batch pipeline) or exactly observations.size()
  /// entries, all non-negative; io::ValidateRawDataset enforces the
  /// invariant. Kept as a parallel vector rather than a RawObservation
  /// field so the compiled artifacts, the append patch path and the
  /// io::DatasetFingerprint (which keys those artifacts, none of which
  /// depend on time) are untouched by temporal metadata. The streaming
  /// layer (kbt::stream) is the producer and consumer.
  std::vector<double> observation_timestamps;

  /// World truth V*_d for data items (synthetic gold; partial KBs used for
  /// LCWA labels are carried separately by the eval layer).
  std::unordered_map<kb::DataItemId, kb::ValueId> true_values;

  /// n (number of false values) per predicate, indexed by PredicateId.
  std::vector<int> num_false_by_predicate;

  uint32_t num_websites = 0;
  uint32_t num_pages = 0;
  uint32_t num_extractors = 0;
  uint32_t num_patterns = 0;

  size_t size() const { return observations.size(); }

  /// n for a data item, falling back to `fallback` for unknown predicates.
  int NumFalseValues(kb::DataItemId item, int fallback = 10) const {
    const kb::PredicateId p = kb::DataItemPredicate(item);
    if (p < num_false_by_predicate.size()) return num_false_by_predicate[p];
    return fallback;
  }
};

}  // namespace kbt::extract

#endif  // KBT_EXTRACT_RAW_DATASET_H_
