#include "extract/extraction_simulator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/math.h"

namespace kbt::extract {

namespace {

using kb::DataItemId;
using kb::PredicateId;
using kb::ValueId;

/// Key identifying one stated triple of one page, for provided-set lookups.
struct ProvidedKey {
  kb::PageId page;
  DataItemId item;
  ValueId value;
  bool operator==(const ProvidedKey& o) const {
    return page == o.page && item == o.item && value == o.value;
  }
};

struct ProvidedKeyHash {
  size_t operator()(const ProvidedKey& k) const {
    uint64_t h = k.item;
    h ^= (static_cast<uint64_t>(k.page) << 1) * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(k.value) + 0x85ebca6bULL) * 0xc2b2ae3d27d4eb4fULL;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

/// Draws a confidence score. Correct extractions skew high, incorrect ones
/// low; `calibration`=0 collapses both to the same Beta(2,2).
float DrawConfidence(bool correct, double calibration, Rng& rng) {
  const double sharp = 6.0 * calibration;
  const double a = correct ? 2.0 + sharp : 2.0;
  const double b = correct ? 2.0 : 2.0 + sharp;
  return static_cast<float>(Clamp(rng.Beta(a, b), 0.0, 1.0));
}

}  // namespace

Status ExtractionSimulator::Validate() const {
  if (config_.extractors.empty()) {
    return Status::InvalidArgument("no extractors configured");
  }
  for (const auto& e : config_.extractors) {
    if (e.page_coverage < 0 || e.page_coverage > 1) {
      return Status::InvalidArgument("page_coverage outside [0,1]");
    }
    if (e.recall < 0 || e.recall > 1) {
      return Status::InvalidArgument("recall outside [0,1]");
    }
    if (e.component_accuracy <= 0 || e.component_accuracy > 1) {
      return Status::InvalidArgument("component_accuracy outside (0,1]");
    }
    if (e.patterns_per_predicate < 1) {
      return Status::InvalidArgument("patterns_per_predicate < 1");
    }
  }
  return Status::OK();
}

StatusOr<RawDataset> ExtractionSimulator::Run(
    const corpus::WebCorpus& corpus) const {
  KBT_RETURN_IF_ERROR(Validate());
  const kb::KnowledgeBase& world = corpus.world();
  const int num_predicates = static_cast<int>(world.num_predicates());

  // Provided-set membership, to label corrupted/hallucinated extractions.
  std::unordered_set<ProvidedKey, ProvidedKeyHash> provided_set;
  provided_set.reserve(corpus.num_provided() * 2);
  for (const auto& t : corpus.provided()) {
    provided_set.insert(ProvidedKey{t.page, t.item, t.value});
  }

  RawDataset out;
  out.num_websites = static_cast<uint32_t>(corpus.num_websites());
  out.num_pages = static_cast<uint32_t>(corpus.num_pages());
  out.num_extractors = static_cast<uint32_t>(config_.extractors.size());
  out.num_false_by_predicate.resize(static_cast<size_t>(num_predicates));
  for (int p = 0; p < num_predicates; ++p) {
    out.num_false_by_predicate[static_cast<size_t>(p)] =
        world.predicate(static_cast<PredicateId>(p)).num_false_values;
  }
  for (const auto& [item, value] : world.facts()) {
    out.true_values.emplace(item, value);
  }
  uint32_t max_pattern = 0;

  Rng root(config_.seed);
  for (const ExtractorProfile& profile : config_.extractors) {
    Rng ext_rng = root.Fork(profile.id + 1);
    for (const auto& pat : profile.patterns) {
      max_pattern = std::max(max_pattern, pat.id + 1);
    }
    // Zipf-biased pattern choice: the head pattern of each predicate does
    // most of the extracting, tail patterns fire rarely.
    const ZipfSampler pattern_zipf(
        static_cast<size_t>(profile.patterns_per_predicate), 1.6);
    for (kb::PageId page_id = 0; page_id < corpus.num_pages(); ++page_id) {
      if (!ext_rng.Bernoulli(profile.page_coverage)) continue;
      const corpus::Webpage& page = corpus.page(page_id);
      const kb::WebsiteId website = page.website;
      const auto [begin, end] = corpus.PageTripleRange(page_id);

      // Per-(extractor,page) dedup: (item,value) -> index in out.observations.
      std::unordered_map<uint64_t, size_t> local;

      auto emit = [&](kb::PatternId pattern, DataItemId item, ValueId value,
                      float conf, bool is_provided) {
        const uint64_t key = item * 0x9e3779b97f4a7c15ULL ^ value;
        const auto it = local.find(key);
        if (it != local.end()) {
          // Same triple extracted twice (e.g. by two patterns): keep the
          // higher confidence.
          RawObservation& existing = out.observations[it->second];
          existing.confidence = std::max(existing.confidence, conf);
          return;
        }
        local.emplace(key, out.observations.size());
        out.observations.push_back(RawObservation{
            profile.id, pattern, website, page_id, item, value, conf,
            is_provided});
      };

      // ---- Provided triples: misses and corruptions ----
      for (uint32_t i = begin; i < end; ++i) {
        const corpus::ProvidedTriple& t = corpus.provided()[i];
        const PredicateId pred = kb::DataItemPredicate(t.item);
        // Pick one of the extractor's patterns for this predicate.
        const int variant = static_cast<int>(pattern_zipf.Sample(ext_rng));
        const size_t pat_index =
            static_cast<size_t>(pred) *
                static_cast<size_t>(profile.patterns_per_predicate) +
            static_cast<size_t>(variant);
        if (pat_index >= profile.patterns.size()) continue;
        const PatternProfile& pattern = profile.patterns[pat_index];

        if (!ext_rng.Bernoulli(profile.recall * pattern.recall_multiplier)) {
          continue;  // Missed (false negative).
        }

        // Component corruptions.
        DataItemId item = t.item;
        ValueId value = t.value;
        const double pc = pattern.component_accuracy;
        bool corrupted = false;
        // Subject misreconciliation: swap in a different subject.
        if (!ext_rng.Bernoulli(pc)) {
          const auto& items = corpus.ItemsOfPredicate(pred);
          if (items.size() > 1) {
            item = items[static_cast<size_t>(
                ext_rng.UniformInt(0, items.size() - 1))];
            corrupted = true;
          }
        }
        // Predicate misclassification: move the triple to another predicate.
        if (!ext_rng.Bernoulli(pc) && num_predicates > 1) {
          PredicateId other;
          do {
            other = static_cast<PredicateId>(
                ext_rng.UniformInt(0, num_predicates - 1));
          } while (other == kb::DataItemPredicate(item));
          item = kb::MakeDataItem(kb::DataItemSubject(item), other);
          corrupted = true;
        }
        // Object misreconciliation: sibling value or type-violating entity.
        if (!ext_rng.Bernoulli(pc)) {
          const PredicateId ipred = kb::DataItemPredicate(item);
          const auto& bad_pool = corpus.CorruptionPool(ipred);
          if (ext_rng.Bernoulli(profile.type_error_fraction) &&
              !bad_pool.empty()) {
            // Type violation: s=o sometimes, otherwise a wrong-typed value.
            if (ext_rng.Bernoulli(0.25)) {
              value = kb::DataItemSubject(item);
            } else {
              value = bad_pool[static_cast<size_t>(
                  ext_rng.UniformInt(0, bad_pool.size() - 1))];
            }
          } else {
            const auto& pool = corpus.ValuePool(ipred);
            if (!pool.empty()) {
              value = pool[static_cast<size_t>(
                  ext_rng.UniformInt(0, pool.size() - 1))];
            }
          }
          corrupted = true;
        }

        const bool is_provided =
            !corrupted ||
            provided_set.contains(ProvidedKey{page_id, item, value});
        const float conf =
            profile.emits_confidence
                ? DrawConfidence(is_provided, profile.confidence_calibration,
                                 ext_rng)
                : 1.0f;
        emit(pattern.id, item, value, conf, is_provided);
      }

      // ---- Hallucinations: triples the page never stated ----
      const int num_fake = ext_rng.Poisson(profile.hallucination_rate);
      for (int f = 0; f < num_fake; ++f) {
        const PredicateId pred = static_cast<PredicateId>(
            ext_rng.UniformInt(0, num_predicates - 1));
        const auto& items = corpus.ItemsOfPredicate(pred);
        if (items.empty()) continue;
        const DataItemId item = items[static_cast<size_t>(
            ext_rng.UniformInt(0, items.size() - 1))];
        ValueId value;
        const auto& bad_pool = corpus.CorruptionPool(pred);
        if (ext_rng.Bernoulli(profile.type_error_fraction) &&
            !bad_pool.empty()) {
          value = bad_pool[static_cast<size_t>(
              ext_rng.UniformInt(0, bad_pool.size() - 1))];
        } else {
          const auto& pool = corpus.ValuePool(pred);
          if (pool.empty()) continue;
          value = pool[static_cast<size_t>(
              ext_rng.UniformInt(0, pool.size() - 1))];
        }
        const int variant = static_cast<int>(pattern_zipf.Sample(ext_rng));
        const size_t pat_index =
            static_cast<size_t>(pred) *
                static_cast<size_t>(profile.patterns_per_predicate) +
            static_cast<size_t>(variant);
        if (pat_index >= profile.patterns.size()) continue;
        const bool is_provided =
            provided_set.contains(ProvidedKey{page_id, item, value});
        const float conf =
            profile.emits_confidence
                ? DrawConfidence(is_provided, profile.confidence_calibration,
                                 ext_rng)
                : 1.0f;
        emit(profile.patterns[pat_index].id, item, value, conf, is_provided);
      }
    }
  }
  out.num_patterns = max_pattern;
  return out;
}

}  // namespace kbt::extract
