#ifndef KBT_EXTRACT_EXTRACTOR_PROFILE_H_
#define KBT_EXTRACT_EXTRACTOR_PROFILE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "kb/ids.h"

namespace kbt::extract {

/// One extraction pattern of an extractor, tied to a predicate. Patterns are
/// the finest quality unit on the extractor side of the paper's granularity
/// hierarchy <extractor, pattern, predicate, website>: two patterns of the
/// same extractor may have very different precision.
struct PatternProfile {
  kb::PatternId id = kb::kInvalidId;  // Globally unique.
  kb::PredicateId predicate = kb::kInvalidId;
  /// Multiplies the extractor's base recall for triples of this predicate.
  double recall_multiplier = 1.0;
  /// Per-component (subject/predicate/object) extraction accuracy for this
  /// pattern; the pattern's triple precision is roughly the cube of this
  /// (the paper's synthetic setup uses Pe = P^3).
  double component_accuracy = 0.9;
};

/// Quality profile of one simulated extraction system (the stand-in for one
/// of KV's 16 extractors).
struct ExtractorProfile {
  kb::ExtractorId id = kb::kInvalidId;
  std::string name;
  /// delta: probability the extractor processes a given page at all.
  double page_coverage = 0.5;
  /// R: probability of extracting a triple the page provides (before the
  /// pattern multiplier).
  double recall = 0.5;
  /// Base per-component accuracy; per-pattern values jitter around it.
  double component_accuracy = 0.8;
  /// Mean number of hallucinated (unprovided) triples per processed page.
  double hallucination_rate = 0.3;
  /// Fraction of corruptions/hallucinations that are type-violating
  /// (feeding the type-check gold standard of Section 5.3.1).
  double type_error_fraction = 0.4;
  /// Extractors that do not emit confidences report 1.0 (Section 5.1.2).
  bool emits_confidence = true;
  /// 0 = confidence carries no signal; 1 = sharply separates correct from
  /// incorrect extractions.
  double confidence_calibration = 0.7;
  /// Patterns instantiated per predicate.
  int patterns_per_predicate = 2;

  /// First global pattern id of this extractor (assigned at setup);
  /// pattern for (predicate p, variant k) is
  /// first_pattern + p * patterns_per_predicate + k.
  kb::PatternId first_pattern = 0;
  std::vector<PatternProfile> patterns;
};

/// Builds a diverse KV-like fleet: a couple of high-precision extractors, a
/// mid tier, and deliberately noisy ones, mirroring E1..E5 of the paper's
/// running example. Deterministic in `rng`.
std::vector<ExtractorProfile> MakeDefaultExtractors(int count,
                                                    int num_predicates,
                                                    Rng& rng);

/// Instantiates per-predicate patterns for `profile` (filling `patterns` and
/// assigning global ids starting at `next_pattern_id`, which is advanced).
void InstantiatePatterns(ExtractorProfile& profile, int num_predicates,
                         kb::PatternId& next_pattern_id, Rng& rng);

}  // namespace kbt::extract

#endif  // KBT_EXTRACT_EXTRACTOR_PROFILE_H_
