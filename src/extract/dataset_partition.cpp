#include "extract/dataset_partition.h"

#include <utility>

#include "common/hash.h"

namespace kbt::extract {

uint32_t ShardOfWebsite(kb::WebsiteId website, uint32_t num_shards,
                        uint64_t salt) {
  if (num_shards <= 1) return 0;
  // HashChain(salt, website) rather than Mix64(website ^ salt): the chain
  // avalanches the salt independently, so salt = 0 and salt = 1 produce
  // unrelated maps even for small website ids.
  return static_cast<uint32_t>(HashChain(salt, website) % num_shards);
}

StatusOr<DatasetPartition> PartitionDataset(const RawDataset& data,
                                            const PartitionOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("PartitionDataset: num_shards must be >= 1");
  }
  const uint32_t k = options.num_shards;

  DatasetPartition partition;
  partition.shard_of_observation.reserve(data.observations.size());

  // Pass 1 (count): per-shard observation counts, so the scatter pass
  // appends into exactly-sized vectors — the count/displacement exchange
  // idiom, minus the displacements (per-shard vectors replace the offsets
  // a flat exchange buffer would need).
  std::vector<size_t> counts(k, 0);
  for (const RawObservation& obs : data.observations) {
    const uint32_t shard = ShardOfWebsite(obs.website, k, options.salt);
    counts[shard]++;
    partition.shard_of_observation.push_back(shard);
  }

  // Every shard starts as a full replica of the global bookkeeping (meta
  // counts, gold truth, per-predicate n) with an empty observation set:
  // dense ids stay globally aligned and empty shards remain valid worlds.
  partition.shards.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    RawDataset shard;
    shard.true_values = data.true_values;
    shard.num_false_by_predicate = data.num_false_by_predicate;
    shard.num_websites = data.num_websites;
    shard.num_pages = data.num_pages;
    shard.num_extractors = data.num_extractors;
    shard.num_patterns = data.num_patterns;
    shard.observations.reserve(counts[s]);
    partition.shards.push_back(std::move(shard));
  }

  // Pass 2 (scatter): stable — observations keep their relative order
  // inside each shard, so the shard-order concatenation is a
  // deterministic permutation of the input.
  for (size_t i = 0; i < data.observations.size(); ++i) {
    partition.shards[partition.shard_of_observation[i]].observations.push_back(
        data.observations[i]);
  }
  return partition;
}

std::vector<std::vector<RawObservation>> PartitionObservations(
    const std::vector<RawObservation>& observations,
    const PartitionOptions& options) {
  const uint32_t k = options.num_shards == 0 ? 1 : options.num_shards;
  std::vector<size_t> counts(k, 0);
  for (const RawObservation& obs : observations) {
    counts[ShardOfWebsite(obs.website, k, options.salt)]++;
  }
  std::vector<std::vector<RawObservation>> buckets(k);
  for (uint32_t s = 0; s < k; ++s) buckets[s].reserve(counts[s]);
  for (const RawObservation& obs : observations) {
    buckets[ShardOfWebsite(obs.website, k, options.salt)].push_back(obs);
  }
  return buckets;
}

}  // namespace kbt::extract
