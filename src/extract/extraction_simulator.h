#ifndef KBT_EXTRACT_EXTRACTION_SIMULATOR_H_
#define KBT_EXTRACT_EXTRACTION_SIMULATOR_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "corpus/web_corpus.h"
#include "extract/extractor_profile.h"
#include "extract/raw_dataset.h"

namespace kbt::extract {

/// Configuration of the extraction pass over a corpus.
struct ExtractionConfig {
  uint64_t seed = 7;
  std::vector<ExtractorProfile> extractors;
};

/// Runs a fleet of simulated extractors over a generated corpus and emits
/// the sparse observation cube (RawDataset). Error channels mirror the ones
/// the paper attributes to real extractors:
///  * misses: a provided triple is skipped (recall / pattern recall);
///  * corruptions: subject, predicate or object is misread - entity
///    reconciliation picking a wrong (possibly type-violating) entity;
///  * hallucinations: triples extracted although the page never stated them
///    (false positives, rate Q_e);
///  * confidence noise: scores correlate with correctness only as much as
///    the extractor's calibration allows; some extractors emit none (1.0).
class ExtractionSimulator {
 public:
  explicit ExtractionSimulator(ExtractionConfig config)
      : config_(std::move(config)) {}

  /// Simulates every extractor over every page of `corpus`.
  StatusOr<RawDataset> Run(const corpus::WebCorpus& corpus) const;

  Status Validate() const;

 private:
  ExtractionConfig config_;
};

}  // namespace kbt::extract

#endif  // KBT_EXTRACT_EXTRACTION_SIMULATOR_H_
