#ifndef KBT_CORPUS_LINK_GRAPH_H_
#define KBT_CORPUS_LINK_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "corpus/web_source.h"

namespace kbt::corpus {

/// Directed site-level hyperlink graph in CSR form, the input to the
/// PageRank substrate. Generated with popularity-proportional preferential
/// attachment: popular (gossip/news) sites accumulate in-links regardless of
/// their factual accuracy, which is exactly why PageRank and KBT end up
/// orthogonal (Figure 10).
class LinkGraph {
 public:
  LinkGraph() = default;
  explicit LinkGraph(size_t num_nodes) : offsets_(num_nodes + 1, 0) {}

  /// Builds a graph over `sites` with Poisson(mean_out_degree) out-degrees
  /// and targets sampled proportionally to popularity (self-loops removed,
  /// duplicates collapsed).
  static LinkGraph Generate(const std::vector<Website>& sites,
                            double mean_out_degree, Rng& rng);

  /// Builds from an explicit edge list (used by tests).
  static LinkGraph FromEdges(size_t num_nodes,
                             std::vector<std::pair<uint32_t, uint32_t>> edges);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_edges() const { return targets_.size(); }

  /// Out-neighbours of `node` as a [begin, end) index range into targets().
  std::pair<uint32_t, uint32_t> OutRange(uint32_t node) const {
    return {offsets_[node], offsets_[node + 1]};
  }
  const std::vector<uint32_t>& targets() const { return targets_; }
  uint32_t out_degree(uint32_t node) const {
    return offsets_[node + 1] - offsets_[node];
  }

 private:
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> targets_;
};

}  // namespace kbt::corpus

#endif  // KBT_CORPUS_LINK_GRAPH_H_
