#include "corpus/web_corpus.h"

#include <cassert>

namespace kbt::corpus {

std::string_view SourceCategoryName(SourceCategory category) {
  switch (category) {
    case SourceCategory::kReference:
      return "reference";
    case SourceCategory::kNews:
      return "news";
    case SourceCategory::kSpecialist:
      return "specialist";
    case SourceCategory::kGossip:
      return "gossip";
    case SourceCategory::kForum:
      return "forum";
    case SourceCategory::kScraper:
      return "scraper";
  }
  return "unknown";
}

void WebCorpus::FinalizeOffsets() {
  page_offsets_.assign(pages_.size() + 1, 0);
  for (const ProvidedTriple& t : provided_) {
    assert(t.page < pages_.size());
    page_offsets_[t.page + 1]++;
  }
  for (size_t i = 1; i < page_offsets_.size(); ++i) {
    page_offsets_[i] += page_offsets_[i - 1];
  }
#ifndef NDEBUG
  // Verify triples really are in page order (CSR contract).
  for (size_t i = 1; i < provided_.size(); ++i) {
    assert(provided_[i - 1].page <= provided_[i].page);
  }
#endif
}

double WebCorpus::EmpiricalSiteAccuracy(kb::WebsiteId id) const {
  const Website& site = websites_[id];
  size_t total = 0;
  size_t correct = 0;
  for (uint32_t p = site.first_page; p < site.first_page + site.num_pages;
       ++p) {
    const auto [begin, end] = PageTripleRange(p);
    for (uint32_t i = begin; i < end; ++i) {
      ++total;
      correct += provided_[i].is_true ? 1 : 0;
    }
  }
  if (total == 0) return site.accuracy;
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace kbt::corpus
