#ifndef KBT_CORPUS_WEB_SOURCE_H_
#define KBT_CORPUS_WEB_SOURCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "kb/ids.h"

namespace kbt::corpus {

/// Behavioural archetypes for generated websites. Categories control the
/// joint distribution of *accuracy* and *popularity*, which is what the
/// KBT-vs-PageRank experiments (Figure 10, Section 5.4.1) probe:
///  * gossip sites are popular but inaccurate (high PageRank, low KBT);
///  * specialist tail sites are accurate but unpopular (low PageRank,
///    high KBT);
///  * forums are mid-popularity, low accuracy (user-generated claims);
///  * scrapers copy other sites' content wholesale.
enum class SourceCategory : uint8_t {
  kReference = 0,   // encyclopedic: accurate, moderately popular
  kNews = 1,        // mostly accurate, popular
  kSpecialist = 2,  // tail sites: very accurate, unpopular
  kGossip = 3,      // popular, inaccurate
  kForum = 4,       // mid popularity, inaccurate
  kScraper = 5,     // copies content from a victim site
};

inline constexpr int kNumSourceCategories = 6;

std::string_view SourceCategoryName(SourceCategory category);

/// A generated website.
struct Website {
  kb::WebsiteId id = kb::kInvalidId;
  std::string domain;
  SourceCategory category = SourceCategory::kReference;
  /// True accuracy A*_w: probability that a fact this site states is
  /// correct. Hidden from inference; used as gold standard for SqA.
  double accuracy = 0.8;
  /// Relative popularity mass used by the hyperlink generator; correlates
  /// with category, NOT with accuracy.
  double popularity = 1.0;
  /// Pages of this site occupy ids [first_page, first_page + num_pages).
  kb::PageId first_page = 0;
  uint32_t num_pages = 0;
  /// For kScraper sites, the site whose content is copied.
  kb::WebsiteId scrape_victim = kb::kInvalidId;
};

/// A generated webpage.
struct Webpage {
  kb::PageId id = kb::kInvalidId;
  kb::WebsiteId website = kb::kInvalidId;
  /// Page-level true accuracy (site accuracy plus a small jitter).
  double accuracy = 0.8;
};

/// One fact stated by a page: the corpus ground truth for C*_wdv = 1.
struct ProvidedTriple {
  kb::PageId page = kb::kInvalidId;
  kb::DataItemId item = 0;
  kb::ValueId value = kb::kInvalidId;
  /// Whether `value` matches the world truth (source error when false).
  bool is_true = false;
};

}  // namespace kbt::corpus

#endif  // KBT_CORPUS_WEB_SOURCE_H_
