#ifndef KBT_CORPUS_CORPUS_CONFIG_H_
#define KBT_CORPUS_CORPUS_CONFIG_H_

#include <cstdint>
#include <vector>

#include "corpus/web_source.h"

namespace kbt::corpus {

/// Per-category generation parameters. Site accuracy is drawn from
/// Beta(accuracy_alpha, accuracy_beta); popularity mass is multiplied by
/// popularity_boost.
struct CategoryProfile {
  SourceCategory category = SourceCategory::kReference;
  /// Mixture weight (relative count of sites in this category).
  double weight = 1.0;
  double accuracy_alpha = 8.0;
  double accuracy_beta = 2.0;
  double popularity_boost = 1.0;
};

/// Knobs of the synthetic web-world generator. Defaults produce a small but
/// structurally KV-like corpus: long-tailed pages-per-site and
/// triples-per-page, site specialization in a few predicates, and a
/// category mix that decorrelates accuracy from popularity.
struct CorpusConfig {
  uint64_t seed = 42;

  // ---- World (the "real world" the KB snapshot and websites describe) ----
  /// Entities available as subjects.
  int num_subjects = 2000;
  /// Number of predicates in the schema.
  int num_predicates = 12;
  /// Values in each predicate's domain; the paper's n (false values) is
  /// values_per_domain - 1.
  int values_per_domain = 26;
  /// Fraction of (subject, predicate) pairs that exist as world facts.
  double item_density = 0.4;

  // ---- Websites and pages ----
  int num_websites = 300;
  /// Pages per site follow Zipf(pages_zipf_exponent) capped at
  /// max_pages_per_site (long tail: most sites have few pages).
  double pages_zipf_exponent = 1.4;
  int max_pages_per_site = 64;
  /// Triples stated per page ~ Zipf over [min,max].
  double triples_zipf_exponent = 1.2;
  int min_triples_per_page = 1;
  int max_triples_per_page = 40;
  /// Each site specializes in this many predicates.
  int predicates_per_site = 3;
  /// Page accuracy = site accuracy + Uniform(-jitter, +jitter), clamped.
  double page_accuracy_jitter = 0.05;
  /// Popularity skew of data items (head items are stated by many pages).
  double item_popularity_zipf = 1.1;
  /// When a page states a wrong value, with this probability the wrong
  /// value is drawn from the *popular* wrong values of the item (shared
  /// misconception, e.g. "Obama born in Kenya") instead of uniformly.
  double popular_error_fraction = 0.5;
  /// Number of distinct popular misconceptions per item.
  int num_popular_errors = 2;

  /// Category mix; empty selects DefaultCategoryMix().
  std::vector<CategoryProfile> categories;

  // ---- Hyperlink graph ----
  /// Mean out-degree of the site-level link graph.
  double mean_out_degree = 8.0;

  /// Default mix used when `categories` is empty: reference/news/specialist/
  /// gossip/forum/scraper with accuracy and popularity profiles matching
  /// Section 5.4.1's qualitative description.
  static std::vector<CategoryProfile> DefaultCategoryMix();
};

}  // namespace kbt::corpus

#endif  // KBT_CORPUS_CORPUS_CONFIG_H_
