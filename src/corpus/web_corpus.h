#ifndef KBT_CORPUS_WEB_CORPUS_H_
#define KBT_CORPUS_WEB_CORPUS_H_

#include <vector>

#include "corpus/web_source.h"
#include "kb/knowledge_base.h"

namespace kbt::corpus {

/// A fully generated synthetic web: the complete world KB (ground truth),
/// the websites/pages, and every fact each page states. This is the
/// substrate standing in for the 2B+ webpages KV crawled; inference never
/// sees it directly — the extraction simulator turns it into the noisy
/// observation cube.
class WebCorpus {
 public:
  WebCorpus() = default;
  WebCorpus(const WebCorpus&) = delete;
  WebCorpus& operator=(const WebCorpus&) = delete;
  WebCorpus(WebCorpus&&) = default;
  WebCorpus& operator=(WebCorpus&&) = default;

  const kb::KnowledgeBase& world() const { return world_; }
  kb::KnowledgeBase& mutable_world() { return world_; }

  const std::vector<Website>& websites() const { return websites_; }
  const std::vector<Webpage>& pages() const { return pages_; }
  const std::vector<ProvidedTriple>& provided() const { return provided_; }

  const Website& website(kb::WebsiteId id) const { return websites_[id]; }
  const Webpage& page(kb::PageId id) const { return pages_[id]; }

  /// Triples stated by `page`, as a [begin, end) range into provided().
  std::pair<uint32_t, uint32_t> PageTripleRange(kb::PageId page) const {
    return {page_offsets_[page], page_offsets_[page + 1]};
  }

  size_t num_websites() const { return websites_.size(); }
  size_t num_pages() const { return pages_.size(); }
  size_t num_provided() const { return provided_.size(); }

  /// True accuracy of a website measured from its actually-stated triples
  /// (the gold standard for SqA at website granularity). Returns the
  /// configured accuracy when the site states nothing.
  double EmpiricalSiteAccuracy(kb::WebsiteId id) const;

  /// Type-correct candidate objects for `predicate` (its value domain).
  const std::vector<kb::ValueId>& ValuePool(kb::PredicateId predicate) const {
    return value_pools_[predicate];
  }
  /// Type-violating objects for `predicate` (wrong type or out-of-range
  /// numbers); the extraction simulator draws corruptions from here.
  const std::vector<kb::ValueId>& CorruptionPool(
      kb::PredicateId predicate) const {
    return corruption_pools_[predicate];
  }
  /// All world data items whose predicate is `predicate`.
  const std::vector<kb::DataItemId>& ItemsOfPredicate(
      kb::PredicateId predicate) const {
    return items_by_predicate_[predicate];
  }

  // -- Builder-side mutators (used by CorpusGenerator) --
  void set_world(kb::KnowledgeBase world) { world_ = std::move(world); }
  void add_website(Website w) { websites_.push_back(std::move(w)); }
  void add_page(Webpage p) { pages_.push_back(p); }
  void add_provided(ProvidedTriple t) { provided_.push_back(t); }
  /// Must be called once after all pages/triples are added, with triples
  /// appended in page-id order.
  void FinalizeOffsets();
  void set_value_pools(std::vector<std::vector<kb::ValueId>> pools) {
    value_pools_ = std::move(pools);
  }
  void set_corruption_pools(std::vector<std::vector<kb::ValueId>> pools) {
    corruption_pools_ = std::move(pools);
  }
  void set_items_by_predicate(std::vector<std::vector<kb::DataItemId>> items) {
    items_by_predicate_ = std::move(items);
  }

 private:
  kb::KnowledgeBase world_;
  std::vector<Website> websites_;
  std::vector<Webpage> pages_;
  std::vector<ProvidedTriple> provided_;
  std::vector<uint32_t> page_offsets_;  // CSR over provided_, by page.
  std::vector<std::vector<kb::ValueId>> value_pools_;
  std::vector<std::vector<kb::ValueId>> corruption_pools_;
  std::vector<std::vector<kb::DataItemId>> items_by_predicate_;
};

}  // namespace kbt::corpus

#endif  // KBT_CORPUS_WEB_CORPUS_H_
