#include "corpus/corpus_generator.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/math.h"
#include "kb/schema.h"

namespace kbt::corpus {

namespace {

using kb::DataItemId;
using kb::EntityId;
using kb::EntityType;
using kb::PredicateId;
using kb::ValueId;

/// Object types cycled across generated predicates. Mixing types gives the
/// type checker real work (rule 2) and numeric predicates exercise rule 3.
constexpr EntityType kObjectTypeCycle[] = {
    EntityType::kPlace, EntityType::kOrganization, EntityType::kDate,
    EntityType::kNumber, EntityType::kString};

struct PredicatePools {
  std::vector<std::vector<ValueId>> value_pool;       // type-correct domain
  std::vector<std::vector<ValueId>> corruption_pool;  // type-violating
  std::vector<std::vector<DataItemId>> items;         // world items
};

}  // namespace

std::vector<CategoryProfile> CorpusConfig::DefaultCategoryMix() {
  // Accuracy ~ Beta(alpha,beta): reference ~0.88, news ~0.8, specialist
  // ~0.93, gossip ~0.35, forum ~0.45, scraper inherits its victim.
  return {
      {SourceCategory::kReference, 0.25, 14.0, 2.0, 2.0},
      {SourceCategory::kNews, 0.20, 8.0, 2.0, 3.0},
      {SourceCategory::kSpecialist, 0.25, 26.0, 2.0, 0.2},
      {SourceCategory::kGossip, 0.10, 3.5, 6.5, 8.0},
      {SourceCategory::kForum, 0.15, 4.5, 5.5, 1.5},
      {SourceCategory::kScraper, 0.05, 1.0, 1.0, 0.5},
  };
}

Status CorpusGenerator::Validate() const {
  const CorpusConfig& c = config_;
  if (c.num_subjects <= 0) return Status::InvalidArgument("num_subjects <= 0");
  if (c.num_predicates <= 0) {
    return Status::InvalidArgument("num_predicates <= 0");
  }
  if (c.values_per_domain < 2) {
    return Status::InvalidArgument("values_per_domain < 2");
  }
  if (c.item_density <= 0.0 || c.item_density > 1.0) {
    return Status::InvalidArgument("item_density outside (0,1]");
  }
  if (c.num_websites <= 0) return Status::InvalidArgument("num_websites <= 0");
  if (c.max_pages_per_site < 1) {
    return Status::InvalidArgument("max_pages_per_site < 1");
  }
  if (c.min_triples_per_page < 1 ||
      c.max_triples_per_page < c.min_triples_per_page) {
    return Status::InvalidArgument("bad triples_per_page bounds");
  }
  if (c.predicates_per_site < 1) {
    return Status::InvalidArgument("predicates_per_site < 1");
  }
  if (c.popular_error_fraction < 0.0 || c.popular_error_fraction > 1.0) {
    return Status::InvalidArgument("popular_error_fraction outside [0,1]");
  }
  return Status::OK();
}

StatusOr<WebCorpus> CorpusGenerator::Generate() const {
  KBT_RETURN_IF_ERROR(Validate());
  const CorpusConfig& cfg = config_;
  Rng root(cfg.seed);
  Rng world_rng = root.Fork(1);
  Rng site_rng = root.Fork(2);
  Rng page_rng = root.Fork(3);

  WebCorpus corpus;
  kb::KnowledgeBase world;

  // ---- Subjects ----
  std::vector<EntityId> subjects;
  subjects.reserve(static_cast<size_t>(cfg.num_subjects));
  for (int i = 0; i < cfg.num_subjects; ++i) {
    subjects.push_back(
        world.AddEntity("subject_" + std::to_string(i), EntityType::kPerson));
  }

  // ---- Predicates and their value domains ----
  PredicatePools pools;
  pools.value_pool.resize(static_cast<size_t>(cfg.num_predicates));
  pools.corruption_pool.resize(static_cast<size_t>(cfg.num_predicates));
  pools.items.resize(static_cast<size_t>(cfg.num_predicates));
  for (int p = 0; p < cfg.num_predicates; ++p) {
    const EntityType object_type =
        kObjectTypeCycle[static_cast<size_t>(p) % std::size(kObjectTypeCycle)];
    kb::PredicateSchema schema;
    schema.name = "predicate_" + std::to_string(p);
    schema.subject_type = EntityType::kPerson;
    schema.object_type = object_type;
    schema.functional = true;
    schema.num_false_values = cfg.values_per_domain - 1;
    if (object_type == EntityType::kNumber) {
      schema.numeric_min = 0.0;
      schema.numeric_max = 1000.0;
    }
    const PredicateId pid = world.AddPredicate(schema);

    // Type-correct domain values.
    auto& pool = pools.value_pool[pid];
    pool.reserve(static_cast<size_t>(cfg.values_per_domain));
    for (int v = 0; v < cfg.values_per_domain; ++v) {
      double numeric = std::nan("");
      if (object_type == EntityType::kNumber) {
        numeric = world_rng.Uniform(1.0, 999.0);
      }
      pool.push_back(world.AddEntity(
          "p" + std::to_string(p) + "_value_" + std::to_string(v), object_type,
          numeric));
    }
    // Type-violating corruption candidates: a wrong-typed entity and, for
    // numeric predicates, out-of-range numbers.
    auto& bad = pools.corruption_pool[pid];
    const EntityType wrong_type = object_type == EntityType::kPlace
                                      ? EntityType::kOrganization
                                      : EntityType::kPlace;
    for (int v = 0; v < 4; ++v) {
      bad.push_back(world.AddEntity(
          "p" + std::to_string(p) + "_badtype_" + std::to_string(v),
          wrong_type));
    }
    if (object_type == EntityType::kNumber) {
      for (int v = 0; v < 4; ++v) {
        bad.push_back(world.AddEntity(
            "p" + std::to_string(p) + "_badrange_" + std::to_string(v),
            EntityType::kNumber, world_rng.Uniform(2000.0, 100000.0)));
      }
    }
  }

  // ---- World facts ----
  for (EntityId s : subjects) {
    for (int p = 0; p < cfg.num_predicates; ++p) {
      if (!world_rng.Bernoulli(cfg.item_density)) continue;
      const auto& pool = pools.value_pool[static_cast<size_t>(p)];
      const ValueId truth =
          pool[static_cast<size_t>(world_rng.UniformInt(0, pool.size() - 1))];
      const Status st = world.AddFact(s, static_cast<PredicateId>(p), truth);
      if (!st.ok()) return st;
      pools.items[static_cast<size_t>(p)].push_back(
          kb::MakeDataItem(s, static_cast<PredicateId>(p)));
    }
  }

  // Popular misconceptions: per item, a couple of wrong values that many
  // inaccurate sites share.
  std::unordered_map<DataItemId, std::vector<ValueId>> popular_errors;
  for (int p = 0; p < cfg.num_predicates; ++p) {
    const auto& pool = pools.value_pool[static_cast<size_t>(p)];
    for (DataItemId item : pools.items[static_cast<size_t>(p)]) {
      const ValueId truth = *world.ValueOf(item);
      auto& errs = popular_errors[item];
      int attempts = 0;
      while (static_cast<int>(errs.size()) < cfg.num_popular_errors &&
             attempts++ < 50) {
        const ValueId v = pool[static_cast<size_t>(
            world_rng.UniformInt(0, pool.size() - 1))];
        if (v != truth &&
            std::find(errs.begin(), errs.end(), v) == errs.end()) {
          errs.push_back(v);
        }
      }
    }
  }

  // Per-predicate item popularity (head items are widely stated).
  std::vector<ZipfSampler> item_popularity;
  item_popularity.reserve(static_cast<size_t>(cfg.num_predicates));
  for (int p = 0; p < cfg.num_predicates; ++p) {
    const size_t n = std::max<size_t>(1, pools.items[static_cast<size_t>(p)].size());
    item_popularity.emplace_back(n, cfg.item_popularity_zipf);
  }

  // ---- Websites ----
  const std::vector<CategoryProfile> mix =
      cfg.categories.empty() ? CorpusConfig::DefaultCategoryMix()
                             : cfg.categories;
  std::vector<double> mix_weights;
  mix_weights.reserve(mix.size());
  for (const auto& m : mix) mix_weights.push_back(m.weight);
  AliasSampler category_sampler(mix_weights);

  // Base popularity ranks are a random permutation so that rank does not
  // correlate with category by construction.
  std::vector<int> rank(static_cast<size_t>(cfg.num_websites));
  for (int i = 0; i < cfg.num_websites; ++i) rank[static_cast<size_t>(i)] = i;
  site_rng.Shuffle(rank);

  ZipfSampler page_count_zipf(static_cast<size_t>(cfg.max_pages_per_site),
                              cfg.pages_zipf_exponent);

  std::vector<Website> sites;
  sites.reserve(static_cast<size_t>(cfg.num_websites));
  std::vector<std::vector<PredicateId>> site_predicates(
      static_cast<size_t>(cfg.num_websites));
  for (int i = 0; i < cfg.num_websites; ++i) {
    const CategoryProfile& profile = mix[category_sampler.Sample(site_rng)];
    Website site;
    site.id = static_cast<kb::WebsiteId>(i);
    site.domain = std::string(SourceCategoryName(profile.category)) + "_" +
                  std::to_string(i) + ".example.com";
    site.category = profile.category;
    site.accuracy = Clamp(
        site_rng.Beta(profile.accuracy_alpha, profile.accuracy_beta), 0.05,
        0.98);
    site.popularity =
        profile.popularity_boost /
        std::pow(static_cast<double>(rank[static_cast<size_t>(i)]) + 1.0, 0.9);
    site.num_pages =
        static_cast<uint32_t>(page_count_zipf.Sample(site_rng)) + 1;
    if (profile.category == SourceCategory::kScraper && i > 0) {
      site.scrape_victim =
          static_cast<kb::WebsiteId>(site_rng.UniformInt(0, i - 1));
    }
    // Topic predicates.
    auto& preds = site_predicates[static_cast<size_t>(i)];
    const int k = std::min(cfg.predicates_per_site, cfg.num_predicates);
    std::unordered_set<PredicateId> chosen;
    while (static_cast<int>(chosen.size()) < k) {
      chosen.insert(static_cast<PredicateId>(
          site_rng.UniformInt(0, cfg.num_predicates - 1)));
    }
    preds.assign(chosen.begin(), chosen.end());
    std::sort(preds.begin(), preds.end());
    sites.push_back(std::move(site));
  }

  // ---- Pages and provided triples ----
  ZipfSampler triple_count_zipf(
      static_cast<size_t>(cfg.max_triples_per_page - cfg.min_triples_per_page +
                          1),
      cfg.triples_zipf_exponent);

  corpus.set_world(std::move(world));
  const kb::KnowledgeBase& w = corpus.world();

  uint32_t next_page = 0;
  for (auto& site : sites) {
    site.first_page = next_page;
    next_page += site.num_pages;
  }

  // First pass: non-scraper sites state their own triples.
  std::vector<std::vector<ProvidedTriple>> by_page(next_page);
  for (const auto& site : sites) {
    if (site.category == SourceCategory::kScraper &&
        site.scrape_victim != kb::kInvalidId) {
      continue;  // Second pass.
    }
    Rng rng = page_rng.Fork(site.id);
    const auto& preds = site_predicates[site.id];
    for (uint32_t pg = 0; pg < site.num_pages; ++pg) {
      const kb::PageId page_id = site.first_page + pg;
      const double page_accuracy =
          Clamp(site.accuracy + rng.Uniform(-cfg.page_accuracy_jitter,
                                            cfg.page_accuracy_jitter),
                0.02, 0.99);
      const int want = cfg.min_triples_per_page +
                       static_cast<int>(triple_count_zipf.Sample(rng));
      std::unordered_set<DataItemId> used;
      for (int t = 0; t < want; ++t) {
        const PredicateId pred = preds[static_cast<size_t>(
            rng.UniformInt(0, preds.size() - 1))];
        const auto& items = pools.items[pred];
        if (items.empty()) continue;
        DataItemId item = 0;
        bool found = false;
        for (int attempt = 0; attempt < 8; ++attempt) {
          item = items[item_popularity[pred].Sample(rng)];
          if (used.insert(item).second) {
            found = true;
            break;
          }
        }
        if (!found) continue;
        const ValueId truth = *w.ValueOf(item);
        ValueId stated = truth;
        if (!rng.Bernoulli(page_accuracy)) {
          const auto& errs = popular_errors[item];
          if (!errs.empty() && rng.Bernoulli(cfg.popular_error_fraction)) {
            stated = errs[static_cast<size_t>(
                rng.UniformInt(0, errs.size() - 1))];
          } else {
            const auto& pool = pools.value_pool[pred];
            // Rejection: any domain value other than the truth.
            do {
              stated = pool[static_cast<size_t>(
                  rng.UniformInt(0, pool.size() - 1))];
            } while (stated == truth);
          }
        }
        by_page[page_id].push_back(
            ProvidedTriple{page_id, item, stated, stated == truth});
      }
      corpus.add_page(Webpage{page_id, site.id, page_accuracy});
    }
  }

  // Second pass: scrapers copy a victim's triples.
  for (const auto& site : sites) {
    if (site.category != SourceCategory::kScraper ||
        site.scrape_victim == kb::kInvalidId) {
      continue;
    }
    Rng rng = page_rng.Fork(0x5c4a9e5ULL + site.id);
    const Website& victim = sites[site.scrape_victim];
    // Collect the victim's triples.
    std::vector<ProvidedTriple> victim_triples;
    for (uint32_t pg = victim.first_page;
         pg < victim.first_page + victim.num_pages; ++pg) {
      for (const auto& t : by_page[pg]) victim_triples.push_back(t);
    }
    for (uint32_t pg = 0; pg < site.num_pages; ++pg) {
      const kb::PageId page_id = site.first_page + pg;
      const double page_accuracy = victim_triples.empty()
                                       ? site.accuracy
                                       : victim.accuracy;
      if (!victim_triples.empty()) {
        const int want =
            cfg.min_triples_per_page +
            static_cast<int>(triple_count_zipf.Sample(rng));
        std::unordered_set<DataItemId> used;
        for (int t = 0; t < want; ++t) {
          const auto& src = victim_triples[static_cast<size_t>(
              rng.UniformInt(0, victim_triples.size() - 1))];
          if (!used.insert(src.item).second) continue;
          by_page[page_id].push_back(
              ProvidedTriple{page_id, src.item, src.value, src.is_true});
        }
      }
      corpus.add_page(Webpage{page_id, site.id, page_accuracy});
    }
  }

  // Pages were added out of page-id order (two passes); re-sort.
  {
    std::vector<Webpage> pages(corpus.pages());
    std::sort(pages.begin(), pages.end(),
              [](const Webpage& a, const Webpage& b) { return a.id < b.id; });
    // Rebuild via a fresh corpus-internal vector: use the builder API.
    // (WebCorpus keeps pages by value; simplest is to mutate through a copy.)
    WebCorpus rebuilt;
    rebuilt.set_world(std::move(corpus.mutable_world()));
    for (auto& s : sites) rebuilt.add_website(std::move(s));
    for (const auto& p : pages) rebuilt.add_page(p);
    for (uint32_t pg = 0; pg < next_page; ++pg) {
      for (const auto& t : by_page[pg]) rebuilt.add_provided(t);
    }
    rebuilt.FinalizeOffsets();
    rebuilt.set_value_pools(std::move(pools.value_pool));
    rebuilt.set_corruption_pools(std::move(pools.corruption_pool));
    rebuilt.set_items_by_predicate(std::move(pools.items));
    return rebuilt;
  }
}

}  // namespace kbt::corpus
