#include "corpus/link_graph.h"

#include <algorithm>
#include <cassert>

namespace kbt::corpus {

LinkGraph LinkGraph::Generate(const std::vector<Website>& sites,
                              double mean_out_degree, Rng& rng) {
  const size_t n = sites.size();
  assert(n > 0);
  std::vector<double> popularity(n);
  for (size_t i = 0; i < n; ++i) {
    popularity[i] = std::max(sites[i].popularity, 1e-9);
  }
  AliasSampler target_sampler(popularity);

  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(static_cast<size_t>(static_cast<double>(n) * mean_out_degree));
  for (uint32_t src = 0; src < n; ++src) {
    const int degree = 1 + rng.Poisson(std::max(0.0, mean_out_degree - 1.0));
    for (int d = 0; d < degree; ++d) {
      uint32_t dst = static_cast<uint32_t>(target_sampler.Sample(rng));
      if (dst == src) continue;  // No self-loops.
      edges.emplace_back(src, dst);
    }
  }
  return FromEdges(n, std::move(edges));
}

LinkGraph LinkGraph::FromEdges(
    size_t num_nodes, std::vector<std::pair<uint32_t, uint32_t>> edges) {
  // Collapse duplicates.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  LinkGraph g(num_nodes);
  for (const auto& [src, dst] : edges) {
    assert(src < num_nodes && dst < num_nodes);
    g.offsets_[src + 1]++;
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.targets_.resize(edges.size());
  std::vector<uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [src, dst] : edges) {
    g.targets_[cursor[src]++] = dst;
  }
  return g;
}

}  // namespace kbt::corpus
