#ifndef KBT_CORPUS_CORPUS_GENERATOR_H_
#define KBT_CORPUS_CORPUS_GENERATOR_H_

#include "common/random.h"
#include "common/status.h"
#include "corpus/corpus_config.h"
#include "corpus/web_corpus.h"

namespace kbt::corpus {

/// Generates a complete synthetic web world from a CorpusConfig:
///  1. a world KB (entities, typed predicate schemas, single-truth facts);
///  2. websites with category-driven accuracy/popularity and Zipf page
///     counts;
///  3. per-page stated triples: correct with the page's accuracy, otherwise
///    a popular misconception or a uniform false value;
///  4. scraper sites that restate a victim site's triples verbatim.
///
/// Determinism: the same config (including seed) always produces the same
/// corpus, bit for bit.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig config) : config_(std::move(config)) {}

  /// Validates the config and generates the corpus.
  StatusOr<WebCorpus> Generate() const;

  /// Config sanity checks (positive counts, probabilities in range, ...).
  Status Validate() const;

 private:
  CorpusConfig config_;
};

}  // namespace kbt::corpus

#endif  // KBT_CORPUS_CORPUS_GENERATOR_H_
