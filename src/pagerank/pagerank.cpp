#include "pagerank/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kbt::pagerank {

StatusOr<std::vector<double>> ComputePageRank(const corpus::LinkGraph& graph,
                                              const PageRankConfig& config) {
  const size_t n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (config.damping < 0.0 || config.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0,1)");
  }

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (uint32_t u = 0; u < n; ++u) {
      const uint32_t degree = graph.out_degree(u);
      if (degree == 0) {
        dangling_mass += rank[u];
        continue;
      }
      const double share = rank[u] / degree;
      const auto [b, e] = graph.OutRange(u);
      for (uint32_t k = b; k < e; ++k) {
        next[graph.targets()[k]] += share;
      }
    }
    const double teleport =
        (1.0 - config.damping) / static_cast<double>(n) +
        config.damping * dangling_mass / static_cast<double>(n);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      next[i] = teleport + config.damping * next[i];
      delta += std::fabs(next[i] - rank[i]);
    }
    rank.swap(next);
    if (delta < config.tolerance) break;
  }
  return rank;
}

std::vector<double> NormalizeToUnitInterval(std::vector<double> scores) {
  double max_score = 0.0;
  for (double s : scores) max_score = std::max(max_score, s);
  if (max_score > 0.0) {
    for (double& s : scores) s /= max_score;
  }
  return scores;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

std::vector<size_t> DescendingRanks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](size_t a, size_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  });
  std::vector<size_t> ranks(values.size());
  for (size_t pos = 0; pos < order.size(); ++pos) ranks[order[pos]] = pos;
  return ranks;
}

}  // namespace kbt::pagerank
