#ifndef KBT_PAGERANK_PAGERANK_H_
#define KBT_PAGERANK_PAGERANK_H_

#include <vector>

#include "common/status.h"
#include "corpus/link_graph.h"

namespace kbt::pagerank {

/// Parameters of the power-iteration PageRank used as the exogenous-signal
/// baseline of Section 5.4.1 (Figure 10).
struct PageRankConfig {
  double damping = 0.85;
  int max_iterations = 100;
  /// L1 change below which iteration stops.
  double tolerance = 1e-10;
};

/// Computes PageRank over `graph`. Dangling-node mass is redistributed
/// uniformly. The returned scores sum to 1.
StatusOr<std::vector<double>> ComputePageRank(const corpus::LinkGraph& graph,
                                              const PageRankConfig& config = {});

/// The paper normalizes PageRank scores to [0, 1] before plotting
/// (Section 5.4.1); this divides by the maximum score.
std::vector<double> NormalizeToUnitInterval(std::vector<double> scores);

/// Pearson correlation between two equally-sized signals; the Figure 10
/// claim is that corr(KBT, PageRank) is near zero ("orthogonal signals").
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Rank of each element (0 = largest). Used for the "top 15% PageRank /
/// bottom 50% KBT" style statements of Section 5.4.1.
std::vector<size_t> DescendingRanks(const std::vector<double>& values);

}  // namespace kbt::pagerank

#endif  // KBT_PAGERANK_PAGERANK_H_
