#include "eval/copy_detection.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace kbt::eval {

namespace {

uint64_t PackPair(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

struct PairStats {
  int shared = 0;
  int shared_false = 0;
  /// Shared false claims weighted by rarity: a false value stated by only
  /// two sites weighs 1; a popular misconception stated web-wide weighs
  /// next to nothing (honest-but-wrong sites share those without copying).
  double weighted_false = 0.0;
};

}  // namespace

std::vector<CopyPair> DetectCopying(const extract::CompiledMatrix& matrix,
                                    const std::vector<double>& slot_value_prob,
                                    uint32_t num_websites,
                                    const CopyDetectionConfig& config) {
  // Distinct claims per website, and the inverted claim -> site lists.
  // Claims are (item, value) pairs; a website may host the same claim in
  // several slots (pages), which counts once.
  std::vector<double> claims_per_site(num_websites, 0.0);

  std::vector<CopyPair> out;
  std::unordered_map<uint64_t, PairStats> pair_stats;

  // Slots are grouped by item; within an item, gather (value -> sites).
  for (size_t i = 0; i < matrix.num_items(); ++i) {
    const auto [b, e] = matrix.ItemSlots(i);
    // value -> deduped site list (few values/sites per item).
    std::unordered_map<uint32_t, std::vector<uint32_t>> by_value;
    std::unordered_map<uint32_t, double> value_prob;
    for (uint32_t s = b; s < e; ++s) {
      const uint32_t site = matrix.slot_website(s);
      if (site >= num_websites) continue;
      auto& sites = by_value[matrix.slot_value(s)];
      if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
        sites.push_back(site);
      }
      value_prob[matrix.slot_value(s)] = slot_value_prob[s];
    }
    for (auto& [value, sites] : by_value) {
      const bool is_false =
          value_prob[value] < config.false_claim_threshold;
      const double rarity =
          2.0 / static_cast<double>(std::max<size_t>(2, sites.size()));
      std::sort(sites.begin(), sites.end());
      for (uint32_t site : sites) claims_per_site[site] += 1.0;
      for (size_t x = 0; x < sites.size(); ++x) {
        for (size_t y = x + 1; y < sites.size(); ++y) {
          PairStats& stats = pair_stats[PackPair(sites[x], sites[y])];
          stats.shared += 1;
          if (is_false) {
            stats.shared_false += 1;
            stats.weighted_false += rarity;
          }
        }
      }
    }
  }

  for (const auto& [key, stats] : pair_stats) {
    if (stats.shared < config.min_shared_claims) continue;
    const uint32_t a = static_cast<uint32_t>(key >> 32);
    const uint32_t b = static_cast<uint32_t>(key & 0xffffffffu);
    const double size_a = claims_per_site[a];
    const double size_b = claims_per_site[b];
    const double smaller = std::max(1.0, std::min(size_a, size_b));
    const double uni = std::max(1.0, size_a + size_b - stats.shared);

    CopyPair pair;
    pair.site_a = a;
    pair.site_b = b;
    pair.shared_claims = stats.shared;
    pair.shared_false_claims = stats.shared_false;
    pair.jaccard = static_cast<double>(stats.shared) / uni;
    // Containment of the smaller site in the larger one, with shared FALSE
    // claims counted extra: a scraper's claim set is (mostly) contained in
    // its victim's, mistakes included, while honest sources only share the
    // truth.
    const double containment = static_cast<double>(stats.shared) / smaller;
    const double false_containment = stats.weighted_false / smaller;
    pair.score =
        containment + config.false_claim_weight * false_containment;
    if (pair.score >= config.min_score) out.push_back(pair);
  }

  std::sort(out.begin(), out.end(), [](const CopyPair& x, const CopyPair& y) {
    if (x.score != y.score) return x.score > y.score;
    return PackPair(x.site_a, x.site_b) < PackPair(y.site_a, y.site_b);
  });
  return out;
}

}  // namespace kbt::eval
