#ifndef KBT_EVAL_COPY_DETECTION_H_
#define KBT_EVAL_COPY_DETECTION_H_

#include <cstdint>
#include <vector>

#include "extract/observation_matrix.h"

namespace kbt::eval {

/// Section 5.4.2 (future work, item 4): "Some websites scrape data from
/// other websites. Identifying such websites requires copy detection."
///
/// This implements the classic accuracy-based copy signal of Dong et
/// al. (PVLDB'09) at web scale: two sources sharing many claims is weak
/// evidence of copying (truth is shared by honest sources too), but sharing
/// *false* claims — values the fusion layer believes are wrong — is strong
/// evidence, because independent sources err independently.
struct CopyDetectionConfig {
  /// Minimum number of shared (item, value) claims before a pair is scored.
  int min_shared_claims = 5;
  /// Claims with p(V_d = v | X) below this are treated as false claims.
  double false_claim_threshold = 0.5;
  /// Weight of a shared false claim relative to a shared true claim.
  double false_claim_weight = 5.0;
  /// Minimum score to report a pair. Score = containment of the smaller
  /// site's claims in the larger site's, plus weighted false-claim
  /// containment; honest same-topic pairs typically score < 0.7 while
  /// scrapers exceed 1.
  double min_score = 0.8;
};

/// One suspected copying relationship (undirected; a < b).
struct CopyPair {
  uint32_t site_a = 0;
  uint32_t site_b = 0;
  /// Claims stated by both sites.
  int shared_claims = 0;
  /// Shared claims the model believes are false.
  int shared_false_claims = 0;
  /// Jaccard similarity of the two sites' claim sets.
  double jaccard = 0.0;
  /// Weighted copy score in [0, 1+]: overlap fraction with false claims
  /// up-weighted; > ~0.5 is a strong copying signal.
  double score = 0.0;
};

/// Scans the compiled matrix for website pairs with suspicious claim
/// overlap. `slot_value_prob` is a finished model's p(V_d=v|X) per slot.
/// Runtime is linear in total claim-list lengths (inverted-index join), so
/// only sites actually sharing claims are ever paired.
std::vector<CopyPair> DetectCopying(const extract::CompiledMatrix& matrix,
                                    const std::vector<double>& slot_value_prob,
                                    uint32_t num_websites,
                                    const CopyDetectionConfig& config = {});

}  // namespace kbt::eval

#endif  // KBT_EVAL_COPY_DETECTION_H_
