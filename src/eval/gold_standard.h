#ifndef KBT_EVAL_GOLD_STANDARD_H_
#define KBT_EVAL_GOLD_STANDARD_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "extract/observation_matrix.h"
#include "fusion/single_layer.h"
#include "kb/knowledge_base.h"
#include "kb/type_checker.h"
#include "core/multilayer_result.h"

namespace kbt::eval {

/// One distinct extracted triple (d, v) with the model's belief in it.
struct TriplePrediction {
  kb::DataItemId item = 0;
  kb::ValueId value = kb::kInvalidId;
  double probability = 0.0;
  bool covered = false;
};

/// Deduplicates the multi-layer posterior to one prediction per distinct
/// (d, v); slots of the same triple share p(V_d = v | X) by construction.
std::vector<TriplePrediction> TriplePredictions(
    const extract::CompiledMatrix& matrix,
    const std::vector<double>& slot_value_prob,
    const std::vector<uint8_t>& slot_covered);

/// Gold standard of Section 5.3.1 over a fixed set of triples, combining:
///  * LCWA labels against a (partial) Freebase-like KB: in-KB -> true;
///    KB knows another value for the data item -> false; else unknown;
///  * type checking against the world schema: violations -> false AND
///    extraction error.
class GoldStandard {
 public:
  /// `reference_kb`: the partial KB (Freebase stand-in) for LCWA.
  /// `schema_kb`: the KB carrying entity types / predicate schemas for type
  /// checking (usually the world KB; only schema tables are read).
  GoldStandard(const kb::KnowledgeBase& reference_kb,
               const kb::KnowledgeBase& schema_kb)
      : reference_kb_(reference_kb), checker_(schema_kb) {}

  /// Label for one triple: true/false, or nullopt (unknown -> excluded from
  /// the evaluation set, as in the paper).
  std::optional<bool> Label(kb::DataItemId item, kb::ValueId value) const;

  /// Whether the triple violates the type rules (these are also counted as
  /// extraction mistakes, Figure 6's "type-error triples").
  bool IsTypeError(kb::DataItemId item, kb::ValueId value) const;

 private:
  const kb::KnowledgeBase& reference_kb_;
  kb::TypeChecker checker_;
};

/// The four headline metrics of Table 5 computed over gold-labeled triples.
/// Coverage is the fraction of labeled triples that have a prediction; the
/// other metrics are computed over the covered ones.
struct TripleMetrics {
  double sqv = 0.0;
  double wdev = 0.0;
  double auc_pr = 0.0;
  double coverage = 0.0;
  size_t num_labeled = 0;
  size_t num_covered = 0;
  double fraction_true = 0.0;
};

TripleMetrics EvaluateTriples(const std::vector<TriplePrediction>& predictions,
                              const GoldStandard& gold);

}  // namespace kbt::eval

#endif  // KBT_EVAL_GOLD_STANDARD_H_
