#ifndef KBT_EVAL_METRICS_H_
#define KBT_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace kbt::eval {

/// Mean squared error between predictions and {0,1} truths — the paper's
/// SqV/SqC/SqA depending on what is being compared. Returns 0 on empty
/// input.
double SquareLoss(const std::vector<double>& predicted,
                  const std::vector<double>& truth);

/// Weighted deviation (Section 5.1.1): triples are bucketed by predicted
/// probability into the paper's non-uniform buckets (fine near 0 and 1);
/// per bucket, the squared difference between the mean prediction and the
/// empirical accuracy is averaged, weighted by bucket size. Lower is better.
double WeightedDeviation(const std::vector<double>& predicted,
                         const std::vector<uint8_t>& truth);

/// One point of a PR curve.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
  double threshold = 0.0;
};

/// Precision-recall curve, sweeping the decision threshold over the sorted
/// predictions (one point per distinct threshold, ties collapsed).
std::vector<PrPoint> PrCurve(const std::vector<double>& predicted,
                             const std::vector<uint8_t>& truth);

/// Area under the PR curve, computed by the standard step-wise
/// interpolation (average precision). Higher is better. Returns 0 when
/// there are no positive labels.
double AucPr(const std::vector<double>& predicted,
             const std::vector<uint8_t>& truth);

/// One calibration bucket: mean predicted probability vs empirical accuracy.
struct CalibrationPoint {
  double predicted_mean = 0.0;
  double empirical_accuracy = 0.0;
  double weight = 0.0;  // Number of triples in the bucket.
};

/// Calibration curve over the paper's WDev buckets (Figure 8). Empty
/// buckets are omitted.
std::vector<CalibrationPoint> CalibrationCurve(
    const std::vector<double>& predicted, const std::vector<uint8_t>& truth);

}  // namespace kbt::eval

#endif  // KBT_EVAL_METRICS_H_
