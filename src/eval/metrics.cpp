#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/histogram.h"
#include "common/math.h"

namespace kbt::eval {

double SquareLoss(const std::vector<double>& predicted,
                  const std::vector<double>& truth) {
  assert(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    total += SquaredError(predicted[i], truth[i]);
  }
  return total / static_cast<double>(predicted.size());
}

double WeightedDeviation(const std::vector<double>& predicted,
                         const std::vector<uint8_t>& truth) {
  assert(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  Histogram sums = Histogram::WDevBuckets();
  Histogram hits = Histogram::WDevBuckets();
  Histogram counts = Histogram::WDevBuckets();
  for (size_t i = 0; i < predicted.size(); ++i) {
    sums.Add(predicted[i], predicted[i]);
    hits.Add(predicted[i], truth[i] ? 1.0 : 0.0);
    counts.Add(predicted[i], 1.0);
  }
  double weighted = 0.0;
  for (size_t b = 0; b < counts.num_buckets(); ++b) {
    const double n = counts.bucket_count(b);
    if (n <= 0.0) continue;
    const double mean_pred = sums.bucket_count(b) / n;
    const double accuracy = hits.bucket_count(b) / n;
    weighted += n * SquaredError(mean_pred, accuracy);
  }
  return weighted / static_cast<double>(predicted.size());
}

std::vector<PrPoint> PrCurve(const std::vector<double>& predicted,
                             const std::vector<uint8_t>& truth) {
  assert(predicted.size() == truth.size());
  std::vector<size_t> order(predicted.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&predicted](size_t a, size_t b) {
    return predicted[a] > predicted[b];
  });

  double total_positive = 0.0;
  for (uint8_t t : truth) total_positive += t;
  std::vector<PrPoint> curve;
  if (total_positive == 0.0 || predicted.empty()) return curve;

  double tp = 0.0;
  double seen = 0.0;
  for (size_t k = 0; k < order.size(); ++k) {
    tp += truth[order[k]];
    seen += 1.0;
    // Collapse ties: only emit when the next prediction differs.
    if (k + 1 < order.size() &&
        predicted[order[k + 1]] == predicted[order[k]]) {
      continue;
    }
    curve.push_back(PrPoint{tp / total_positive, tp / seen,
                            predicted[order[k]]});
  }
  return curve;
}

double AucPr(const std::vector<double>& predicted,
             const std::vector<uint8_t>& truth) {
  const std::vector<PrPoint> curve = PrCurve(predicted, truth);
  if (curve.empty()) return 0.0;
  // Average-precision style integration: sum precision * delta-recall over
  // the threshold sweep.
  double auc = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& p : curve) {
    auc += p.precision * (p.recall - prev_recall);
    prev_recall = p.recall;
  }
  return auc;
}

std::vector<CalibrationPoint> CalibrationCurve(
    const std::vector<double>& predicted, const std::vector<uint8_t>& truth) {
  assert(predicted.size() == truth.size());
  Histogram sums = Histogram::WDevBuckets();
  Histogram hits = Histogram::WDevBuckets();
  Histogram counts = Histogram::WDevBuckets();
  for (size_t i = 0; i < predicted.size(); ++i) {
    sums.Add(predicted[i], predicted[i]);
    hits.Add(predicted[i], truth[i] ? 1.0 : 0.0);
    counts.Add(predicted[i], 1.0);
  }
  std::vector<CalibrationPoint> out;
  for (size_t b = 0; b < counts.num_buckets(); ++b) {
    const double n = counts.bucket_count(b);
    if (n <= 0.0) continue;
    out.push_back(CalibrationPoint{sums.bucket_count(b) / n,
                                   hits.bucket_count(b) / n, n});
  }
  return out;
}

}  // namespace kbt::eval
