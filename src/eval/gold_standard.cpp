#include "eval/gold_standard.h"

#include "eval/metrics.h"

namespace kbt::eval {

std::vector<TriplePrediction> TriplePredictions(
    const extract::CompiledMatrix& matrix,
    const std::vector<double>& slot_value_prob,
    const std::vector<uint8_t>& slot_covered) {
  std::vector<TriplePrediction> out;
  out.reserve(matrix.num_slots() / 2);
  for (size_t i = 0; i < matrix.num_items(); ++i) {
    const auto [b, e] = matrix.ItemSlots(i);
    // Slots are contiguous per item; collect distinct values (few per item).
    for (uint32_t s = b; s < e; ++s) {
      bool seen = false;
      for (uint32_t t = b; t < s; ++t) {
        if (matrix.slot_value(t) == matrix.slot_value(s)) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      out.push_back(TriplePrediction{matrix.item_id(i), matrix.slot_value(s),
                                     slot_value_prob[s],
                                     slot_covered[s] != 0});
    }
  }
  return out;
}

std::optional<bool> GoldStandard::Label(kb::DataItemId item,
                                        kb::ValueId value) const {
  if (IsTypeError(item, value)) return false;
  switch (reference_kb_.Label(item, value)) {
    case kb::LcwaLabel::kTrue:
      return true;
    case kb::LcwaLabel::kFalse:
      return false;
    case kb::LcwaLabel::kUnknown:
      return std::nullopt;
  }
  return std::nullopt;
}

bool GoldStandard::IsTypeError(kb::DataItemId item, kb::ValueId value) const {
  return !checker_.IsWellTyped(item, value);
}

TripleMetrics EvaluateTriples(const std::vector<TriplePrediction>& predictions,
                              const GoldStandard& gold) {
  TripleMetrics m;
  std::vector<double> probs;
  std::vector<uint8_t> labels;
  std::vector<double> labels_double;
  size_t num_true = 0;
  for (const TriplePrediction& p : predictions) {
    const std::optional<bool> label = gold.Label(p.item, p.value);
    if (!label.has_value()) continue;
    ++m.num_labeled;
    num_true += *label ? 1 : 0;
    if (!p.covered) continue;
    ++m.num_covered;
    probs.push_back(p.probability);
    labels.push_back(*label ? 1 : 0);
    labels_double.push_back(*label ? 1.0 : 0.0);
  }
  if (m.num_labeled == 0) return m;
  m.coverage = static_cast<double>(m.num_covered) /
               static_cast<double>(m.num_labeled);
  m.fraction_true =
      static_cast<double>(num_true) / static_cast<double>(m.num_labeled);
  m.sqv = SquareLoss(probs, labels_double);
  m.wdev = WeightedDeviation(probs, labels);
  m.auc_pr = AucPr(probs, labels);
  return m;
}

}  // namespace kbt::eval
