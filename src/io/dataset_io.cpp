#include "io/dataset_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.h"

namespace kbt::io {

namespace {

constexpr char kDatasetHeader[] = "# kbt-raw-dataset v1";
constexpr char kPredictionsHeader[] = "# kbt-predictions v1";
constexpr char kScoresHeader[] = "# kbt-scores v1";

Status ExpectHeader(std::istream& in, const char* expected) {
  std::string line;
  if (!std::getline(in, line) || line != expected) {
    return Status::InvalidArgument(std::string("missing header '") +
                                   expected + "'");
  }
  return Status::OK();
}

Status CheckPredicateCovered(const extract::RawDataset& dataset,
                             kb::DataItemId item, const std::string& what) {
  const kb::PredicateId predicate = kb::DataItemPredicate(item);
  if (predicate >= dataset.num_false_by_predicate.size()) {
    return Status::InvalidArgument(
        what + " references predicate " + std::to_string(predicate) +
        " with no nfalse entry (have " +
        std::to_string(dataset.num_false_by_predicate.size()) + ")");
  }
  if (dataset.num_false_by_predicate[predicate] < 1) {
    return Status::InvalidArgument(
        "predicate " + std::to_string(predicate) +
        " has non-positive domain size n = " +
        std::to_string(dataset.num_false_by_predicate[predicate]));
  }
  return Status::OK();
}

// Mix64/HashChain (common/hash.h) are fixed, platform-stable mixes — not
// std::hash — so fingerprints are identical across platforms and standard
// libraries; a golden value is pinned in tests/io/dataset_io_test.cpp.

}  // namespace

uint64_t DatasetFingerprint(const extract::RawDataset& dataset) {
  uint64_t fp = 0x6b62742d66702d31ull;  // "kbt-fp-1": fingerprint version.
  fp = HashChain(fp, dataset.num_websites);
  fp = HashChain(fp, dataset.num_pages);
  fp = HashChain(fp, dataset.num_extractors);
  fp = HashChain(fp, dataset.num_patterns);
  fp = HashChain(fp, dataset.num_false_by_predicate.size());
  for (const int n : dataset.num_false_by_predicate) {
    fp = HashChain(fp, static_cast<uint64_t>(static_cast<int64_t>(n)));
  }
  // true_values lives in an unordered_map whose iteration order is not
  // specified, so its entries are combined commutatively (sum of per-entry
  // mixes) to keep the fingerprint content-stable.
  uint64_t truth = 0;
  for (const auto& [item, value] : dataset.true_values) {
    truth += Mix64(HashChain(Mix64(item), value));
  }
  fp = HashChain(fp, truth);
  fp = HashChain(fp, dataset.true_values.size());
  // Observations are an ordered sequence (appends extend it), so they are
  // chained in order; the float confidence contributes its exact bits.
  fp = HashChain(fp, dataset.observations.size());
  for (const extract::RawObservation& obs : dataset.observations) {
    uint64_t h = Mix64(obs.item);
    h = HashChain(h, (static_cast<uint64_t>(obs.extractor) << 32) | obs.pattern);
    h = HashChain(h, (static_cast<uint64_t>(obs.website) << 32) | obs.page);
    uint32_t conf_bits = 0;
    static_assert(sizeof(conf_bits) == sizeof(obs.confidence));
    std::memcpy(&conf_bits, &obs.confidence, sizeof(conf_bits));
    h = HashChain(h, (static_cast<uint64_t>(obs.value) << 32) | conf_bits);
    h = HashChain(h, obs.provided ? 1u : 0u);
    fp = HashChain(fp, h);
  }
  return fp;
}

StatusOr<ParsedObservation> ParseObservationFields(const std::string& fields) {
  std::istringstream in(fields);
  ParsedObservation parsed;
  extract::RawObservation& obs = parsed.observation;
  int provided = 0;
  in >> obs.extractor >> obs.pattern >> obs.website >> obs.page >> obs.item >>
      obs.value >> obs.confidence >> provided;
  if (in.fail()) {
    return Status::InvalidArgument("malformed obs record '" + fields + "'");
  }
  obs.provided = provided != 0;
  // Optional ninth column: the ingestion timestamp. Anything else trailing
  // (a second extra field, non-numeric text) is malformed, not ignorable —
  // silently dropping fields would mask format drift.
  std::string rest;
  if (in >> rest) {
    char* end = nullptr;
    parsed.timestamp = std::strtod(rest.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == rest.c_str()) {
      return Status::InvalidArgument("malformed timestamp '" + rest +
                                     "' in obs record");
    }
    if (!(parsed.timestamp >= 0.0)) {  // Also rejects NaN.
      return Status::InvalidArgument("negative timestamp '" + rest +
                                     "' in obs record (timestamps are "
                                     "seconds since a caller-defined epoch "
                                     "and must be >= 0)");
    }
    parsed.has_timestamp = true;
    std::string extra;
    if (in >> extra) {
      return Status::InvalidArgument("trailing field '" + extra +
                                     "' after timestamp in obs record");
    }
  }
  return parsed;
}

Status ValidateRawDataset(const extract::RawDataset& dataset) {
  if (!dataset.observation_timestamps.empty()) {
    if (dataset.observation_timestamps.size() !=
        dataset.observations.size()) {
      return Status::InvalidArgument(
          "observation_timestamps has " +
          std::to_string(dataset.observation_timestamps.size()) +
          " entries for " + std::to_string(dataset.observations.size()) +
          " observations (must be empty or exactly parallel)");
    }
    for (size_t i = 0; i < dataset.observation_timestamps.size(); ++i) {
      if (!(dataset.observation_timestamps[i] >= 0.0)) {  // Rejects NaN too.
        return Status::InvalidArgument(
            "observation " + std::to_string(i) + " has negative timestamp " +
            std::to_string(dataset.observation_timestamps[i]));
      }
    }
  }
  for (size_t i = 0; i < dataset.observations.size(); ++i) {
    const extract::RawObservation& obs = dataset.observations[i];
    const std::string what = "observation " + std::to_string(i);
    if (obs.extractor >= dataset.num_extractors) {
      return Status::InvalidArgument(
          what + " has extractor id " + std::to_string(obs.extractor) +
          " >= meta count " + std::to_string(dataset.num_extractors));
    }
    if (obs.pattern >= dataset.num_patterns) {
      return Status::InvalidArgument(
          what + " has pattern id " + std::to_string(obs.pattern) +
          " >= meta count " + std::to_string(dataset.num_patterns));
    }
    if (obs.website >= dataset.num_websites) {
      return Status::InvalidArgument(
          what + " has website id " + std::to_string(obs.website) +
          " >= meta count " + std::to_string(dataset.num_websites));
    }
    if (obs.page >= dataset.num_pages) {
      return Status::InvalidArgument(
          what + " has page id " + std::to_string(obs.page) +
          " >= meta count " + std::to_string(dataset.num_pages));
    }
    if (obs.value == kb::kInvalidId) {
      return Status::InvalidArgument(what + " has an invalid value id");
    }
    KBT_RETURN_IF_ERROR(CheckPredicateCovered(dataset, obs.item, what));
  }
  for (const auto& [item, value] : dataset.true_values) {
    if (value == kb::kInvalidId) {
      return Status::InvalidArgument(
          "true value for item " + std::to_string(item) +
          " has an invalid value id");
    }
    KBT_RETURN_IF_ERROR(CheckPredicateCovered(
        dataset, item, "true value for item " + std::to_string(item)));
  }
  return Status::OK();
}

Status WriteRawDataset(const std::string& path,
                       const extract::RawDataset& dataset) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << kDatasetHeader << "\n";
  out << "meta " << dataset.num_websites << " " << dataset.num_pages << " "
      << dataset.num_extractors << " " << dataset.num_patterns << "\n";
  for (size_t p = 0; p < dataset.num_false_by_predicate.size(); ++p) {
    out << "nfalse " << p << " " << dataset.num_false_by_predicate[p] << "\n";
  }
  for (const auto& [item, value] : dataset.true_values) {
    out << "truth " << item << " " << value << "\n";
  }
  char buf[64];
  const bool timestamped =
      dataset.observation_timestamps.size() == dataset.observations.size() &&
      !dataset.observations.empty();
  for (size_t i = 0; i < dataset.observations.size(); ++i) {
    const auto& obs = dataset.observations[i];
    // %.9g round-trips float exactly.
    std::snprintf(buf, sizeof(buf), "%.9g", obs.confidence);
    out << "obs " << obs.extractor << " " << obs.pattern << " " << obs.website
        << " " << obs.page << " " << obs.item << " " << obs.value << " "
        << buf << " " << (obs.provided ? 1 : 0);
    if (timestamped) {
      // %.17g round-trips double exactly.
      std::snprintf(buf, sizeof(buf), "%.17g",
                    dataset.observation_timestamps[i]);
      out << " " << buf;
    }
    out << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<extract::RawDataset> ReadRawDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  KBT_RETURN_IF_ERROR(ExpectHeader(in, kDatasetHeader));

  extract::RawDataset dataset;
  std::string line;
  size_t line_no = 1;
  // Tracks which nfalse entries were explicitly declared (resize gaps get
  // the default and may still be declared later, once).
  std::vector<uint8_t> nfalse_declared;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "meta") {
      fields >> dataset.num_websites >> dataset.num_pages >>
          dataset.num_extractors >> dataset.num_patterns;
    } else if (tag == "nfalse") {
      size_t pred = 0;
      int n = 0;
      fields >> pred >> n;
      if (!fields.fail() && pred < nfalse_declared.size() &&
          nfalse_declared[pred]) {
        // Silently keeping the last duplicate would make the domain size —
        // and with it every inference vote — depend on line order.
        return Status::InvalidArgument(
            "duplicate nfalse entry for predicate " + std::to_string(pred) +
            " at line " + std::to_string(line_no));
      }
      if (dataset.num_false_by_predicate.size() <= pred) {
        dataset.num_false_by_predicate.resize(pred + 1, 10);
        nfalse_declared.resize(pred + 1, 0);
      }
      dataset.num_false_by_predicate[pred] = n;
      nfalse_declared[pred] = 1;
    } else if (tag == "truth") {
      kb::DataItemId item = 0;
      kb::ValueId value = 0;
      fields >> item >> value;
      dataset.true_values[item] = value;
    } else if (tag == "obs") {
      std::string rest;
      std::getline(fields, rest);
      StatusOr<ParsedObservation> parsed = ParseObservationFields(rest);
      if (!parsed.ok()) {
        return Status::InvalidArgument(parsed.status().message() +
                                       " at line " + std::to_string(line_no));
      }
      // All-or-none per file: the first obs line fixes whether this file is
      // timestamped; a mix would leave some observations with a fabricated
      // time, which decay would then treat as real evidence age.
      const bool first_obs = dataset.observations.empty();
      const bool file_timestamped = !dataset.observation_timestamps.empty();
      if (!first_obs && parsed->has_timestamp != file_timestamped) {
        return Status::InvalidArgument(
            std::string("obs line ") + std::to_string(line_no) +
            (parsed->has_timestamp ? " has" : " lacks") +
            " a timestamp but earlier obs lines " +
            (file_timestamped ? "have" : "lack") +
            " one (timestamps are all-or-none per file)");
      }
      dataset.observations.push_back(parsed->observation);
      if (parsed->has_timestamp) {
        dataset.observation_timestamps.push_back(parsed->timestamp);
      }
    } else {
      return Status::InvalidArgument("unknown tag '" + tag + "' at line " +
                                     std::to_string(line_no));
    }
    if (fields.fail()) {
      return Status::InvalidArgument("malformed line " +
                                     std::to_string(line_no));
    }
  }
  KBT_RETURN_IF_ERROR(ValidateRawDataset(dataset));
  return dataset;
}

Status WriteTriplePredictions(
    const std::string& path,
    const std::vector<eval::TriplePrediction>& predictions) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << kPredictionsHeader << "\n";
  char buf[64];
  for (const auto& p : predictions) {
    std::snprintf(buf, sizeof(buf), "%.17g", p.probability);
    out << p.item << " " << p.value << " " << buf << " "
        << (p.covered ? 1 : 0) << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<std::vector<eval::TriplePrediction>> ReadTriplePredictions(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  KBT_RETURN_IF_ERROR(ExpectHeader(in, kPredictionsHeader));
  std::vector<eval::TriplePrediction> out;
  std::string line;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    eval::TriplePrediction p;
    int covered = 0;
    fields >> p.item >> p.value >> p.probability >> covered;
    if (fields.fail()) {
      return Status::InvalidArgument("malformed line " +
                                     std::to_string(line_no));
    }
    p.covered = covered != 0;
    out.push_back(p);
  }
  return out;
}

Status WriteKbtScores(const std::string& path,
                      const std::vector<core::KbtScore>& scores) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << kScoresHeader << "\n";
  char kbt_buf[64];
  char ev_buf[64];
  for (size_t w = 0; w < scores.size(); ++w) {
    std::snprintf(kbt_buf, sizeof(kbt_buf), "%.17g", scores[w].kbt);
    std::snprintf(ev_buf, sizeof(ev_buf), "%.17g", scores[w].evidence);
    out << w << " " << kbt_buf << " " << ev_buf << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<std::vector<core::KbtScore>> ReadKbtScores(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  KBT_RETURN_IF_ERROR(ExpectHeader(in, kScoresHeader));
  std::vector<core::KbtScore> out;
  std::string line;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    size_t site = 0;
    core::KbtScore score;
    fields >> site >> score.kbt >> score.evidence;
    if (fields.fail()) {
      return Status::InvalidArgument("malformed line " +
                                     std::to_string(line_no));
    }
    if (out.size() <= site) out.resize(site + 1);
    out[site] = score;
  }
  return out;
}

}  // namespace kbt::io
