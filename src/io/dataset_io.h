#ifndef KBT_IO_DATASET_IO_H_
#define KBT_IO_DATASET_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/gold_standard.h"
#include "extract/raw_dataset.h"
#include "core/kbt_score.h"

namespace kbt::io {

/// Plain-text (TSV) persistence for the library's main artifacts, so that
/// extraction cubes can be produced once and re-analyzed, and results can
/// be consumed by external tooling. Formats are versioned, deterministic
/// and round-trip exactly (confidences stored with full float precision).

/// Writes a RawDataset:
///   # kbt-raw-dataset v1
///   meta <num_websites> <num_pages> <num_extractors> <num_patterns>
///   nfalse <predicate> <n>              (one per predicate)
///   truth <item> <value>                (one per known true value)
///   obs <extractor> <pattern> <website> <page> <item> <value> <conf> <provided> [<timestamp>]
/// The trailing timestamp column is emitted only when the dataset carries
/// observation_timestamps (see extract::RawDataset), so files written from
/// untimestamped cubes are byte-identical to the pre-timestamp format.
Status WriteRawDataset(const std::string& path,
                       const extract::RawDataset& dataset);

/// Reads a file written by WriteRawDataset. The result is validated with
/// ValidateRawDataset, so malformed TSV surfaces as an InvalidArgument
/// Status here instead of out-of-range indices downstream.
///
/// Timestamps: `obs` lines may carry one optional trailing timestamp
/// column. All-or-none per file — mixing timestamped and untimestamped obs
/// lines is rejected, as are malformed or negative timestamps. Files
/// without the column parse exactly as before (observation_timestamps
/// stays empty).
StatusOr<extract::RawDataset> ReadRawDataset(const std::string& path);

/// One parsed `obs` line: the observation plus the optional trailing
/// timestamp (engaged only when the line carried the ninth column).
struct ParsedObservation {
  extract::RawObservation observation;
  bool has_timestamp = false;
  double timestamp = 0.0;
};

/// Parses the fields of one `obs` record — everything after the "obs" tag:
/// "<extractor> <pattern> <website> <page> <item> <value> <conf> <provided>
/// [<timestamp>]". Shared by ReadRawDataset and the streaming TSV tail
/// feed (kbt::stream::TsvTailFeed) so the two paths cannot drift.
/// InvalidArgument on malformed fields, trailing garbage or a negative
/// timestamp.
StatusOr<ParsedObservation> ParseObservationFields(const std::string& fields);

/// Structural validation of an observation cube:
///  * every observation's extractor/pattern/website/page id falls within
///    the dataset's meta counts, and its value id is valid;
///  * num_false_by_predicate covers (with n >= 1) every predicate
///    referenced by an observation or a true-value entry;
///  * observation_timestamps is either empty or exactly parallel to the
///    observations, with no negative entries.
/// Everything downstream (granularity assignment, matrix compilation)
/// indexes by these ids, so this is the precondition for the whole stack.
Status ValidateRawDataset(const extract::RawDataset& dataset);

/// Stable 64-bit content fingerprint of a RawDataset: covers the meta
/// counts, per-predicate domain sizes, true values and the observation
/// sequence (ids, confidence bit patterns, provided flags). Equal content
/// always yields an equal fingerprint — independent of how the dataset was
/// produced (generated, loaded, appended to), of the platform, and of the
/// true_values hash-map iteration order; any content change yields a
/// different fingerprint except for 64-bit hash collisions, so this is a
/// *probabilistic* cache key (collisions are astronomically unlikely for
/// accidental changes, not impossible). Use it to key persisted compiled
/// artifacts (granularity assignments, compiled matrices) across
/// sessions, pairing it with cheap shape checks (observation/meta counts)
/// where a stale artifact would corrupt results rather than just waste a
/// recompile. observation_timestamps is deliberately EXCLUDED: the
/// fingerprint keys compiled artifacts (assignments, matrices), which are
/// pure functions of the observation content — re-timestamping a cube must
/// not invalidate its compiled form (and the pinned golden value predates
/// timestamps).
uint64_t DatasetFingerprint(const extract::RawDataset& dataset);

/// Writes triple predictions:
///   # kbt-predictions v1
///   <item> <value> <probability> <covered>
Status WriteTriplePredictions(
    const std::string& path,
    const std::vector<eval::TriplePrediction>& predictions);

StatusOr<std::vector<eval::TriplePrediction>> ReadTriplePredictions(
    const std::string& path);

/// Writes per-website KBT scores:
///   # kbt-scores v1
///   <website> <kbt> <evidence>
Status WriteKbtScores(const std::string& path,
                      const std::vector<core::KbtScore>& scores);

StatusOr<std::vector<core::KbtScore>> ReadKbtScores(const std::string& path);

}  // namespace kbt::io

#endif  // KBT_IO_DATASET_IO_H_
