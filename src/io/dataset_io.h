#ifndef KBT_IO_DATASET_IO_H_
#define KBT_IO_DATASET_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eval/gold_standard.h"
#include "extract/raw_dataset.h"
#include "core/kbt_score.h"

namespace kbt::io {

/// Plain-text (TSV) persistence for the library's main artifacts, so that
/// extraction cubes can be produced once and re-analyzed, and results can
/// be consumed by external tooling. Formats are versioned, deterministic
/// and round-trip exactly (confidences stored with full float precision).

/// Writes a RawDataset:
///   # kbt-raw-dataset v1
///   meta <num_websites> <num_pages> <num_extractors> <num_patterns>
///   nfalse <predicate> <n>              (one per predicate)
///   truth <item> <value>                (one per known true value)
///   obs <extractor> <pattern> <website> <page> <item> <value> <conf> <provided>
Status WriteRawDataset(const std::string& path,
                       const extract::RawDataset& dataset);

/// Reads a file written by WriteRawDataset. The result is validated with
/// ValidateRawDataset, so malformed TSV surfaces as an InvalidArgument
/// Status here instead of out-of-range indices downstream.
StatusOr<extract::RawDataset> ReadRawDataset(const std::string& path);

/// Structural validation of an observation cube:
///  * every observation's extractor/pattern/website/page id falls within
///    the dataset's meta counts, and its value id is valid;
///  * num_false_by_predicate covers (with n >= 1) every predicate
///    referenced by an observation or a true-value entry.
/// Everything downstream (granularity assignment, matrix compilation)
/// indexes by these ids, so this is the precondition for the whole stack.
Status ValidateRawDataset(const extract::RawDataset& dataset);

/// Writes triple predictions:
///   # kbt-predictions v1
///   <item> <value> <probability> <covered>
Status WriteTriplePredictions(
    const std::string& path,
    const std::vector<eval::TriplePrediction>& predictions);

StatusOr<std::vector<eval::TriplePrediction>> ReadTriplePredictions(
    const std::string& path);

/// Writes per-website KBT scores:
///   # kbt-scores v1
///   <website> <kbt> <evidence>
Status WriteKbtScores(const std::string& path,
                      const std::vector<core::KbtScore>& scores);

StatusOr<std::vector<core::KbtScore>> ReadKbtScores(const std::string& path);

}  // namespace kbt::io

#endif  // KBT_IO_DATASET_IO_H_
