#ifndef KBT_CORE_INITIALIZATION_H_
#define KBT_CORE_INITIALIZATION_H_

#include <functional>
#include <optional>

#include "extract/observation_matrix.h"
#include "core/multilayer_config.h"
#include "core/multilayer_result.h"
#include "kb/ids.h"

namespace kbt::core {

/// Gold-standard lookup: returns true/false when the triple's correctness is
/// known (e.g. LCWA against a Freebase-like KB plus type checking), nullopt
/// when unknown.
using TripleLabelFn =
    std::function<std::optional<bool>(kb::DataItemId, kb::ValueId)>;

/// Options of the smart ("+") initialization of Section 5: source accuracy
/// is initialized to the fraction of labeled-correct triples extracted from
/// the source, smoothed toward the default; extractor precision likewise
/// over its extraction edges (triple truth is a proxy for extraction
/// correctness: a labeled-true triple is overwhelmingly a correctly
/// extracted one, per the type-check labelling method).
struct SmartInitOptions {
  /// Groups with fewer labeled data points keep the default quality.
  int min_labeled = 3;
  /// Pseudo-count pulling the estimate toward the config default.
  double smoothing = 2.0;
  /// Also initialize extractor precision from the labels. The paper
  /// describes smart initialization for *source* accuracy only; labeled
  /// extractions skew heavily toward LCWA-false triples, so label-derived
  /// extractor precision is biased low — leave this off unless the label
  /// base rate is balanced.
  bool initialize_extractors = true;
};

/// Builds the "+"-variant initial quality for `matrix` from a labeler.
InitialQuality InitialQualityFromLabels(const extract::CompiledMatrix& matrix,
                                        const TripleLabelFn& label,
                                        const MultiLayerConfig& config,
                                        const SmartInitOptions& options = {});

}  // namespace kbt::core

#endif  // KBT_CORE_INITIALIZATION_H_
