#include "core/initialization.h"

#include <vector>

#include "common/math.h"

namespace kbt::core {

InitialQuality InitialQualityFromLabels(const extract::CompiledMatrix& matrix,
                                        const TripleLabelFn& label,
                                        const MultiLayerConfig& config,
                                        const SmartInitOptions& options) {
  InitialQuality init;
  const uint32_t num_sources = matrix.num_sources();
  const uint32_t num_groups = matrix.num_extractor_groups();

  // Cache one label per slot (the label depends only on (item, value)).
  const size_t num_slots = matrix.num_slots();
  // -1 unknown, 0 false, 1 true.
  std::vector<int8_t> slot_label(num_slots, -1);
  for (size_t s = 0; s < num_slots; ++s) {
    const auto l = label(matrix.item_id(matrix.slot_item(s)),
                         matrix.slot_value(s));
    if (l.has_value()) slot_label[s] = *l ? 1 : 0;
  }

  // ---- Source accuracy: fraction of labeled-correct provided triples ----
  init.source_accuracy.assign(num_sources, config.default_source_accuracy);
  init.source_trusted.assign(num_sources, 0);
  for (uint32_t w = 0; w < num_sources; ++w) {
    const auto [b, e] = matrix.SourceSlots(w);
    double labeled = 0.0;
    double correct = 0.0;
    for (uint32_t k = b; k < e; ++k) {
      const uint32_t s = matrix.source_slot_index()[k];
      if (slot_label[s] < 0) continue;
      labeled += 1.0;
      correct += slot_label[s];
    }
    if (labeled >= options.min_labeled) {
      init.source_accuracy[w] =
          (correct + options.smoothing * config.default_source_accuracy) /
          (labeled + options.smoothing);
      init.source_trusted[w] = 1;
    }
  }

  // ---- Extractor precision: fraction of labeled-correct extractions ----
  if (!options.initialize_extractors) return init;
  const double default_precision =
      PrecisionFromQ(config.default_q, config.default_recall, config.gamma);
  init.extractor_precision.assign(num_groups, default_precision);
  init.extractor_recall.assign(num_groups, config.default_recall);
  for (uint32_t g = 0; g < num_groups; ++g) {
    const auto [b, e] = matrix.ExtractorEdges(g);
    double labeled = 0.0;
    double correct = 0.0;
    for (uint32_t k = b; k < e; ++k) {
      const uint32_t edge = matrix.extractor_edge_index()[k];
      const int8_t l = slot_label[matrix.ext_slot(edge)];
      if (l < 0) continue;
      labeled += 1.0;
      correct += l;
    }
    if (labeled >= options.min_labeled) {
      init.extractor_precision[g] =
          (correct + options.smoothing * default_precision) /
          (labeled + options.smoothing);
    }
  }

  return init;
}

}  // namespace kbt::core
