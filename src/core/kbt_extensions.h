#ifndef KBT_CORE_KBT_EXTENSIONS_H_
#define KBT_CORE_KBT_EXTENSIONS_H_

#include <vector>

#include "extract/observation_matrix.h"
#include "core/kbt_score.h"
#include "core/multilayer_result.h"

namespace kbt::core {

/// Implementations of the KBT refinements the paper sketches as future work
/// (Section 5.4.2):
///
///  1. *Topic relevance*: only evaluate a website on triples whose predicate
///     belongs to the site's main topics, so off-topic extractions (e.g.
///     city facts scraped from a business directory's navigation) do not
///     pollute the score.
///  2. *Triviality / IDF weighting*: a predicate whose objects have little
///     variety carries little information ("every movie on a Hindi-movie
///     site is in Hindi"); weight each triple by the inverse popularity of
///     its value within its predicate so trivial triples contribute less.

/// Options for topic extraction.
struct TopicOptions {
  /// A predicate is a topic of the site when it covers at least this
  /// fraction of the site's extracted triples...
  double min_share = 0.1;
  /// ...or is among the site's top-k predicates (the paper's manual
  /// evaluation used the top 3).
  int top_k = 3;
};

/// Main topics (predicates) per website, from the site's slot distribution.
std::vector<std::vector<uint32_t>> WebsiteTopics(
    const extract::CompiledMatrix& matrix, uint32_t num_websites,
    const TopicOptions& options = {});

/// KBT restricted to each site's own topics: slots whose predicate is not a
/// topic of the site are excluded from its score.
std::vector<KbtScore> ComputeTopicalKbt(
    const extract::CompiledMatrix& matrix, const MultiLayerResult& result,
    uint32_t num_websites,
    const std::vector<std::vector<uint32_t>>& topics);

/// IDF weight per slot: log(1 + N_p / n_pv), where N_p is the number of
/// slots of the slot's predicate and n_pv the number of slots stating the
/// slot's value under that predicate. Values stated everywhere (trivial)
/// approach weight log(2); rare informative values weigh more.
std::vector<double> SlotIdfWeights(const extract::CompiledMatrix& matrix);

/// KBT with each slot weighted by p(C=1|X) * idf instead of p(C=1|X):
/// trivially-redundant triples stop inflating trust scores.
std::vector<KbtScore> ComputeIdfWeightedKbt(
    const extract::CompiledMatrix& matrix, const MultiLayerResult& result,
    uint32_t num_websites);

}  // namespace kbt::core

#endif  // KBT_CORE_KBT_EXTENSIONS_H_
