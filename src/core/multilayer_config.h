#ifndef KBT_CORE_MULTILAYER_CONFIG_H_
#define KBT_CORE_MULTILAYER_CONFIG_H_

#include <cstdint>

#include "kernels/kernel_kind.h"

namespace kbt::core {

/// How the alpha prior (Eq. 26) treats the false-value branch.
enum class AlphaUpdateRule : uint8_t {
  /// Eq. 26 verbatim: alpha = vA + (1-v)(1-A). Reproduces Example 3.3's
  /// printed numbers, but is unnormalized over the value domain (a source
  /// with A=0.6 would "provide" each of n false values with prob 0.4); on
  /// noisy cubes this inflates the prior of hallucinated slots and can
  /// destabilize EM once some A_w dips below 0.5.
  kPaperEq26 = 0,
  /// Consistent with the generative model's Eq. 5: the false branch is
  /// divided by n, alpha = vA + (1-v)(1-A)/n. Stable default.
  kDomainNormalized = 1,
};

/// How the value layer models false values.
enum class ValueModel : uint8_t {
  /// ACCU (Eq. 5): the n false values are equally likely.
  kAccu = 0,
  /// POPACCU: false values follow their empirical popularity in the observed
  /// data. The paper found POPACCU does not compose with the improved
  /// weighted estimator (Section 5.1.2), so kAccu is the default.
  kPopAccu = 1,
};

/// All knobs of the multi-layer inference (Algorithm 1). Defaults follow the
/// paper's experimental settings (Section 5.1.2): n comes from the data (the
/// paper sets 10), gamma = 0.25, 5 iterations, improved weighted estimation,
/// prior updates from the 3rd iteration, confidence-weighted extractions.
struct MultiLayerConfig {
  // ---- Iteration control ----
  int max_iterations = 5;
  /// Convergence when max |delta p| over slots falls below this.
  double convergence_tol = 1e-4;

  // ---- Priors / initial parameter values (Section 3.1) ----
  /// Initial p(C_wdv = 1) prior. The paper states alpha = 0.5 but also sets
  /// gamma = p(C_wdv=1) = 0.25 in Eq. 7 — the same quantity. Using the
  /// gamma-consistent value keeps iteration dynamics stable (alpha = 0.5
  /// lets the extractor-precision feedback loop drive every posterior to 1
  /// on sparse cubes); the worked-example tests pin 0.5 explicitly.
  double initial_alpha = 0.25;
  double default_source_accuracy = 0.8;  // A_w
  double default_recall = 0.8;           // R_e
  double default_q = 0.2;                // Q_e
  /// Method-of-moments calibration of the *initial* recall: when no initial
  /// extractor quality is supplied, R_e starts at
  /// min(default_recall, extractions-per-slot / applicable-groups-per-slot)
  /// so that iteration 1's absence evidence matches the observed extraction
  /// density. With the paper's fixed R=0.8 on sparse cubes (effective
  /// recall ~0.3), iteration 1 drives every p(C|X) toward 0, the M-step
  /// then reads "extractors are noise" and EM lands in a degenerate fixed
  /// point. Q_e is started at min(default_q, R0/2) for the same reason.
  bool adaptive_initial_recall = true;
  /// gamma = p(C_wdv = 1) used to derive Q from P and R via Eq. (7).
  double gamma = 0.25;

  // ---- Estimation-procedure variants (the Table 6 ablations) ----
  /// Section 3.3.3: weight value votes by p(C_wdv=1|X) instead of using the
  /// MAP estimate C-hat. Also selects Eq. 28 over Eq. 27 in the M step.
  bool weighted_value_votes = true;
  /// Section 3.3.4: re-estimate alpha per slot via Eq. 26.
  bool update_alpha = true;
  /// First iteration (1-based) at which alpha updates kick in; the paper
  /// starts at the third iteration.
  int alpha_update_start_iteration = 3;
  AlphaUpdateRule alpha_update_rule = AlphaUpdateRule::kDomainNormalized;
  /// Section 3.5: use confidences as soft evidence. When false, extractions
  /// are thresholded at `confidence_threshold` (the Table 6 "I(X>phi)" row).
  bool use_confidence_weights = true;
  double confidence_threshold = 0.0;

  ValueModel value_model = ValueModel::kAccu;

  /// Pins the one unidentifiable degree of freedom of the joint EM: the
  /// global scale of the extraction-correctness posteriors. Each iteration,
  /// a shared intercept tau is fit so that the mean of p(C_wdv=1|X) over
  /// observed slots equals `expected_provided_fraction`; without it the
  /// coupled updates (c -> P,Q -> votes -> c and c -> A -> alpha -> c) are
  /// bistable and drift toward all-provided or all-noise fixed points on
  /// sparse cubes. Disabled by the worked-example tests, which check the
  /// raw one-iteration posteriors of Tables 3-4.
  bool calibrate_correctness = true;
  /// Target mean of p(C|X) across observed slots: roughly the fraction of
  /// extracted (w,d,v) slots that the page really provides.
  double expected_provided_fraction = 0.4;

  // ---- Domain size ----
  /// Overrides the per-item n when >= 1 (the paper uses n=10 for the
  /// multi-layer model); < 1 uses each item's schema-provided n.
  int num_false_override = -1;

  // ---- Coverage semantics (Section 5.1.1 Cov) ----
  /// Source groups with fewer slots keep their default accuracy and cast no
  /// value votes; items whose every slot is unsupported get no prediction.
  int min_source_support = 3;
  /// Extractor groups with fewer extraction edges keep default quality (they
  /// still cast votes, at default strength).
  int min_extractor_support = 3;

  // ---- Parameter freezing (tests / diagnostics) ----
  /// When false, A_w stays at its initial value (the paper's worked
  /// examples assume fixed qualities).
  bool update_source_accuracy = true;
  /// When false, P_e/R_e/Q_e stay at their initial values.
  bool update_extractor_quality = true;

  // ---- Numeric guards ----
  double min_probability = 1e-4;
  double max_probability = 1.0 - 1e-4;

  // ---- Kernel selection ----
  /// Which EM inner-loop implementation runs the E/M passes. Both kinds are
  /// bit-for-bit identical (see src/kernels/kernels.h); scalar_reference is
  /// the always-compiled oracle the parity suite checks the vectorized path
  /// against.
  kernels::Kind kernel = kernels::DefaultKind();
};

}  // namespace kbt::core

#endif  // KBT_CORE_MULTILAYER_CONFIG_H_
