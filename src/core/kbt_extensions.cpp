#include "core/kbt_extensions.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace kbt::core {

std::vector<std::vector<uint32_t>> WebsiteTopics(
    const extract::CompiledMatrix& matrix, uint32_t num_websites,
    const TopicOptions& options) {
  // Per site: predicate -> slot count.
  std::vector<std::unordered_map<uint32_t, double>> counts(num_websites);
  std::vector<double> totals(num_websites, 0.0);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint32_t site = matrix.slot_website(s);
    if (site >= num_websites) continue;
    counts[site][matrix.slot_predicate(s)] += 1.0;
    totals[site] += 1.0;
  }

  std::vector<std::vector<uint32_t>> topics(num_websites);
  for (uint32_t w = 0; w < num_websites; ++w) {
    if (totals[w] <= 0.0) continue;
    std::vector<std::pair<uint32_t, double>> ranked(counts[w].begin(),
                                                    counts[w].end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    for (size_t i = 0; i < ranked.size(); ++i) {
      const double share = ranked[i].second / totals[w];
      if (static_cast<int>(i) < options.top_k || share >= options.min_share) {
        topics[w].push_back(ranked[i].first);
      }
    }
    std::sort(topics[w].begin(), topics[w].end());
  }
  return topics;
}

std::vector<KbtScore> ComputeTopicalKbt(
    const extract::CompiledMatrix& matrix, const MultiLayerResult& result,
    uint32_t num_websites,
    const std::vector<std::vector<uint32_t>>& topics) {
  std::vector<KbtScore> scores(num_websites);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint32_t site = matrix.slot_website(s);
    if (site >= num_websites) continue;
    const auto& site_topics = topics[site];
    if (!std::binary_search(site_topics.begin(), site_topics.end(),
                            matrix.slot_predicate(s))) {
      continue;  // Off-topic triple: not this site's business.
    }
    const double c = result.slot_correct_prob[s];
    scores[site].kbt += c * result.slot_value_prob[s];
    scores[site].evidence += c;
  }
  for (KbtScore& s : scores) {
    s.kbt = s.evidence > 1e-12 ? s.kbt / s.evidence : 0.0;
  }
  return scores;
}

std::vector<double> SlotIdfWeights(const extract::CompiledMatrix& matrix) {
  // (predicate, value) -> #slots, and predicate -> #slots.
  std::unordered_map<uint64_t, double> pv_counts;
  std::unordered_map<uint32_t, double> p_counts;
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint64_t key = (static_cast<uint64_t>(matrix.slot_predicate(s))
                          << 32) |
                         matrix.slot_value(s);
    pv_counts[key] += 1.0;
    p_counts[matrix.slot_predicate(s)] += 1.0;
  }
  std::vector<double> weights(matrix.num_slots(), 0.0);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint64_t key = (static_cast<uint64_t>(matrix.slot_predicate(s))
                          << 32) |
                         matrix.slot_value(s);
    weights[s] =
        std::log(1.0 + p_counts[matrix.slot_predicate(s)] / pv_counts[key]);
  }
  return weights;
}

std::vector<KbtScore> ComputeIdfWeightedKbt(
    const extract::CompiledMatrix& matrix, const MultiLayerResult& result,
    uint32_t num_websites) {
  const std::vector<double> idf = SlotIdfWeights(matrix);
  std::vector<KbtScore> scores(num_websites);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint32_t site = matrix.slot_website(s);
    if (site >= num_websites) continue;
    const double weight = result.slot_correct_prob[s] * idf[s];
    scores[site].kbt += weight * result.slot_value_prob[s];
    scores[site].evidence += weight;
  }
  for (KbtScore& s : scores) {
    s.kbt = s.evidence > 1e-12 ? s.kbt / s.evidence : 0.0;
  }
  return scores;
}

}  // namespace kbt::core
