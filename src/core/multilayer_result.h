#ifndef KBT_CORE_MULTILAYER_RESULT_H_
#define KBT_CORE_MULTILAYER_RESULT_H_

#include <cstdint>
#include <vector>

namespace kbt::core {

/// Initial parameter values for one inference run. Empty vectors select the
/// config defaults; non-empty vectors must match the matrix's group counts.
/// The "+" method variants of Table 5 fill these from a gold standard
/// (see core/initialization.h).
struct InitialQuality {
  std::vector<double> source_accuracy;      // per source group
  std::vector<double> extractor_precision;  // per extractor group
  std::vector<double> extractor_recall;     // per extractor group
  /// Direct initial Q_e. When set it wins over `extractor_precision` (which
  /// otherwise derives Q via Eq. 7); this matches the paper's default
  /// initialization, which fixes Q_e = 0.2 rather than a precision.
  std::vector<double> extractor_q;
  /// Sources whose accuracy was anchored by a gold standard. Trusted
  /// sources participate in fusion even below the support threshold — the
  /// paper's coverage rule drops only sources whose accuracy "remains
  /// default over iterations", and a smart-initialized accuracy is not
  /// default. This is why the "+" variants of Table 5 gain coverage.
  std::vector<uint8_t> source_trusted;
};

/// Output of the multi-layer EM (Algorithm 1).
struct MultiLayerResult {
  // ---- Parameters theta ----
  std::vector<double> source_accuracy;   // A_w per source group
  std::vector<uint8_t> source_supported;  // quality left default when 0
  std::vector<double> extractor_precision;  // P_e
  std::vector<double> extractor_recall;     // R_e
  std::vector<double> extractor_q;          // Q_e (Eq. 7)
  std::vector<uint8_t> extractor_supported;

  // ---- Latent posteriors ----
  /// p(C_wdv = 1 | X) per slot.
  std::vector<double> slot_correct_prob;
  /// p(V_d = v_slot | X) per slot (slots of the same (d, v) share it).
  std::vector<double> slot_value_prob;
  /// Final per-slot alpha (prior of correctness, Eq. 26).
  std::vector<double> slot_alpha;
  /// A slot is covered when its item has at least one supported provider.
  std::vector<uint8_t> slot_covered;
  /// Per item: probability mass assigned to each *unobserved* domain value.
  std::vector<double> item_unobserved_value_prob;

  int iterations = 0;
  bool converged = false;
};

}  // namespace kbt::core

#endif  // KBT_CORE_MULTILAYER_RESULT_H_
