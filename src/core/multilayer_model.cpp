#include "core/multilayer_model.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/math.h"
#include "common/mutex.h"

namespace kbt::core {

namespace {

using extract::CompiledMatrix;
using extract::ExtractorScope;
using extract::kAnyScope;

uint64_t PackPredSite(uint32_t pred, uint32_t site) {
  return (static_cast<uint64_t>(pred) << 32) | site;
}

/// Per-scope additive totals. Two uses per iteration:
///  * absence universe: each extractor group deposits its weighted absence
///    vote into the bucket matching its scope; a slot's total absence
///    evidence is the SUM over all four bucket levels covering it;
///  * recall denominators: each slot deposits p(C=1|X) into its exact
///    (predicate, website) bucket plus the coarser levels; a group reads the
///    ONE bucket matching its scope.
class ScopeTable {
 public:
  void Clear() {
    global_ = 0.0;
    by_pred_.clear();
    by_site_.clear();
    by_pred_site_.clear();
  }

  /// Deposits `v` into the bucket identified by `scope` (group-side use).
  void AddForScope(const ExtractorScope& scope, double v) {
    const bool any_pred = scope.predicate == kAnyScope;
    const bool any_site = scope.website == kAnyScope;
    if (any_pred && any_site) {
      global_ += v;
    } else if (!any_pred && any_site) {
      by_pred_[scope.predicate] += v;
    } else if (any_pred && !any_site) {
      by_site_[scope.website] += v;
    } else {
      by_pred_site_[PackPredSite(scope.predicate, scope.website)] += v;
    }
  }

  /// Deposits `v` into every level covering (pred, site) (slot-side use).
  void AddForSlot(uint32_t pred, uint32_t site, double v) {
    global_ += v;
    by_pred_[pred] += v;
    by_site_[site] += v;
    by_pred_site_[PackPredSite(pred, site)] += v;
  }

  /// Total over all buckets covering a slot at (pred, site).
  double SumCovering(uint32_t pred, uint32_t site) const {
    double total = global_;
    if (const auto it = by_pred_.find(pred); it != by_pred_.end()) {
      total += it->second;
    }
    if (const auto it = by_site_.find(site); it != by_site_.end()) {
      total += it->second;
    }
    if (const auto it = by_pred_site_.find(PackPredSite(pred, site));
        it != by_pred_site_.end()) {
      total += it->second;
    }
    return total;
  }

  /// Value of the single bucket matching `scope`.
  double AtScope(const ExtractorScope& scope) const {
    const bool any_pred = scope.predicate == kAnyScope;
    const bool any_site = scope.website == kAnyScope;
    if (any_pred && any_site) return global_;
    if (!any_pred && any_site) {
      const auto it = by_pred_.find(scope.predicate);
      return it == by_pred_.end() ? 0.0 : it->second;
    }
    if (any_pred && !any_site) {
      const auto it = by_site_.find(scope.website);
      return it == by_site_.end() ? 0.0 : it->second;
    }
    const auto it =
        by_pred_site_.find(PackPredSite(scope.predicate, scope.website));
    return it == by_pred_site_.end() ? 0.0 : it->second;
  }

 private:
  double global_ = 0.0;
  std::unordered_map<uint32_t, double> by_pred_;
  std::unordered_map<uint32_t, double> by_site_;
  std::unordered_map<uint64_t, double> by_pred_site_;
};

/// Serial fallbacks when no executor is supplied.
void ForRange(dataflow::Executor* ex, size_t n,
              const std::function<void(size_t, size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForRanges(n, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

void ForGroups(dataflow::Executor* ex, size_t n,
               const std::function<void(size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForGroups(n, fn);
  } else {
    for (size_t g = 0; g < n; ++g) fn(g);
  }
}

}  // namespace

ExtractorVotes ComputeVotes(double recall, double q, double absence_weight) {
  ExtractorVotes v;
  v.presence = PresenceVote(recall, q);
  v.weighted_absence = absence_weight * AbsenceVote(recall, q);
  return v;
}

double UpdatedAlpha(double value_prob, double source_accuracy) {
  return value_prob * source_accuracy +
         (1.0 - value_prob) * (1.0 - source_accuracy);
}

StatusOr<MultiLayerResult> MultiLayerModel::Run(
    const CompiledMatrix& matrix, const MultiLayerConfig& config,
    const InitialQuality& initial, dataflow::Executor* executor,
    dataflow::StageTimers* timers,
    const std::vector<float>* extraction_weights) {
  const size_t num_slots = matrix.num_slots();
  const size_t num_items = matrix.num_items();
  const uint32_t num_sources = matrix.num_sources();
  const uint32_t num_groups = matrix.num_extractor_groups();

  if (extraction_weights != nullptr &&
      extraction_weights->size() != matrix.num_extractions()) {
    return Status::InvalidArgument(
        "extraction_weights size " +
        std::to_string(extraction_weights->size()) + " != num_extractions " +
        std::to_string(matrix.num_extractions()));
  }

  if (!initial.source_accuracy.empty() &&
      initial.source_accuracy.size() != num_sources) {
    return Status::InvalidArgument("initial source_accuracy size mismatch");
  }
  if (!initial.extractor_precision.empty() &&
      initial.extractor_precision.size() != num_groups) {
    return Status::InvalidArgument("initial extractor_precision size mismatch");
  }
  if (!initial.extractor_recall.empty() &&
      initial.extractor_recall.size() != num_groups) {
    return Status::InvalidArgument("initial extractor_recall size mismatch");
  }
  if (config.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  const auto clampP = [&config](double p) {
    return Clamp(p, config.min_probability, config.max_probability);
  };

  MultiLayerResult r;
  // ---- Parameter initialization (Section 3.1 / Section 5 smart init) ----
  r.source_accuracy.assign(num_sources, config.default_source_accuracy);
  if (!initial.source_accuracy.empty()) {
    for (uint32_t w = 0; w < num_sources; ++w) {
      r.source_accuracy[w] = clampP(initial.source_accuracy[w]);
    }
  }
  double default_recall = config.default_recall;
  double default_q = config.default_q;
  if (config.adaptive_initial_recall && initial.extractor_recall.empty() &&
      num_slots > 0) {
    // Method-of-moments starting point: match the initial R to the observed
    // extraction density so iteration 1's absence evidence is well-scaled
    // (see multilayer_config.h).
    ScopeTable universe;
    for (uint32_t g = 0; g < num_groups; ++g) {
      universe.AddForScope(matrix.extractor_scope(g), 1.0);
    }
    double applicable = 0.0;
    for (size_t s = 0; s < num_slots; ++s) {
      applicable +=
          universe.SumCovering(matrix.slot_predicate(s), matrix.slot_website(s));
    }
    const double mean_universe =
        std::max(1.0, applicable / static_cast<double>(num_slots));
    const double edges_per_slot =
        static_cast<double>(matrix.num_extractions()) /
        static_cast<double>(num_slots);
    default_recall = Clamp(edges_per_slot / mean_universe, 0.05,
                           config.default_recall);
    default_q = std::min(config.default_q, default_recall / 2.0);
  }
  r.extractor_recall.assign(num_groups, default_recall);
  if (!initial.extractor_recall.empty()) {
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_recall[e] = clampP(initial.extractor_recall[e]);
    }
  }
  if (!initial.extractor_q.empty() &&
      initial.extractor_q.size() != num_groups) {
    return Status::InvalidArgument("initial extractor_q size mismatch");
  }
  r.extractor_q.assign(num_groups, default_q);
  r.extractor_precision.assign(num_groups, 0.0);
  if (!initial.extractor_q.empty()) {
    // Direct Q initialization (paper examples / default-style init).
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_q[e] = clampP(initial.extractor_q[e]);
      r.extractor_precision[e] = PrecisionFromQ(
          r.extractor_q[e], r.extractor_recall[e], config.gamma);
    }
  } else if (!initial.extractor_precision.empty()) {
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_precision[e] = clampP(initial.extractor_precision[e]);
      r.extractor_q[e] = QFromPrecisionRecall(r.extractor_precision[e],
                                              r.extractor_recall[e],
                                              config.gamma);
    }
  } else {
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_precision[e] = PrecisionFromQ(
          r.extractor_q[e], r.extractor_recall[e], config.gamma);
    }
  }

  if (!initial.source_trusted.empty() &&
      initial.source_trusted.size() != num_sources) {
    return Status::InvalidArgument("initial source_trusted size mismatch");
  }

  // ---- Support flags (static: structure does not change) ----
  r.source_supported.assign(num_sources, 0);
  for (uint32_t w = 0; w < num_sources; ++w) {
    const auto [b, e] = matrix.SourceSlots(w);
    const bool trusted =
        !initial.source_trusted.empty() && initial.source_trusted[w] != 0;
    r.source_supported[w] =
        (trusted || static_cast<int>(e - b) >= config.min_source_support)
            ? 1
            : 0;
  }
  r.extractor_supported.assign(num_groups, 0);
  for (uint32_t g = 0; g < num_groups; ++g) {
    const auto [b, e] = matrix.ExtractorEdges(g);
    r.extractor_supported[g] =
        (static_cast<int>(e - b) >= config.min_extractor_support) ? 1 : 0;
  }

  // ---- Effective confidence per extraction edge (Section 3.5) ----
  // The optional extraction weight multiplies in *after* the thresholding
  // branch so decay also scales thresholded (0/1) confidences; a null
  // pointer leaves every edge untouched (bit-for-bit the unweighted path).
  std::vector<float> conf(matrix.num_extractions());
  for (size_t e = 0; e < conf.size(); ++e) {
    const float raw = matrix.ext_conf()[e];
    conf[e] = config.use_confidence_weights
                  ? raw
                  : (raw > config.confidence_threshold ? 1.0f : 0.0f);
    if (extraction_weights != nullptr) {
      conf[e] *= (*extraction_weights)[e];
    }
  }

  // ---- POPACCU empirical value popularity per slot ----
  std::vector<double> slot_popularity;
  if (config.value_model == ValueModel::kPopAccu) {
    slot_popularity.resize(num_slots, 0.0);
    for (size_t i = 0; i < num_items; ++i) {
      const auto [b, e] = matrix.ItemSlots(i);
      std::unordered_map<uint32_t, double> counts;
      for (uint32_t s = b; s < e; ++s) counts[matrix.slot_value(s)] += 1.0;
      const double total = static_cast<double>(e - b);
      for (uint32_t s = b; s < e; ++s) {
        slot_popularity[s] = counts[matrix.slot_value(s)] / total;
      }
    }
  }

  // ---- Latent state ----
  r.slot_correct_prob.assign(num_slots, 0.5);
  r.slot_value_prob.assign(num_slots, 0.5);
  r.slot_alpha.assign(num_slots, config.initial_alpha);
  r.slot_covered.assign(num_slots, 0);
  r.item_unobserved_value_prob.assign(num_items, 0.0);

  std::vector<ExtractorVotes> votes(num_groups);
  std::vector<double> slot_logodds(num_slots, 0.0);
  ScopeTable absence_universe;
  ScopeTable slot_mass;

  const auto refresh_votes = [&]() {
    absence_universe.Clear();
    for (uint32_t g = 0; g < num_groups; ++g) {
      const ExtractorScope& scope = matrix.extractor_scope(g);
      votes[g] = ComputeVotes(r.extractor_recall[g], r.extractor_q[g],
                              scope.absence_weight);
      absence_universe.AddForScope(scope, votes[g].weighted_absence);
    }
  };
  refresh_votes();

  std::vector<double> delta_per_chunk;  // Convergence tracking.
  Mutex delta_mutex;

  for (int iteration = 1; iteration <= config.max_iterations; ++iteration) {
    double max_delta = 0.0;
    const auto note_delta = [&](double d) {
      MutexLock lock(delta_mutex);
      max_delta = std::max(max_delta, d);
    };

    // ============ Stage I: extraction correctness p(C|X), Eq. 15 ============
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "I.ExtCorr");
      }
      // Log-odds per slot, before the shared calibration intercept.
      ForRange(executor, num_slots, [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          double vcc = absence_universe.SumCovering(matrix.slot_predicate(s),
                                                    matrix.slot_website(s));
          const auto [eb, ee] = matrix.SlotExtractions(s);
          for (uint32_t e = eb; e < ee; ++e) {
            const uint32_t g = matrix.ext_group()[e];
            vcc += static_cast<double>(conf[e]) *
                   (votes[g].presence - votes[g].weighted_absence);
          }
          slot_logodds[s] = vcc + Logit(r.slot_alpha[s]);
        }
      });

      // Shared intercept: mean p(C|X) is pinned to the expected provided
      // fraction (see multilayer_config.h). Bisection on a monotone mean.
      double tau = 0.0;
      if (config.calibrate_correctness && num_slots > 0) {
        const double target = Clamp(config.expected_provided_fraction,
                                    0.01, 0.99);
        double lo = -30.0;
        double hi = 30.0;
        for (int step = 0; step < 60; ++step) {
          tau = 0.5 * (lo + hi);
          double mean = 0.0;
          for (size_t s = 0; s < num_slots; ++s) {
            mean += Sigmoid(slot_logodds[s] + tau);
          }
          mean /= static_cast<double>(num_slots);
          if (mean < target) {
            lo = tau;
          } else {
            hi = tau;
          }
        }
      }

      ForRange(executor, num_slots, [&](size_t begin, size_t end) {
        double local_delta = 0.0;
        for (size_t s = begin; s < end; ++s) {
          const double c = Sigmoid(slot_logodds[s] + tau);
          local_delta = std::max(local_delta,
                                 std::fabs(c - r.slot_correct_prob[s]));
          r.slot_correct_prob[s] = c;
        }
        note_delta(local_delta);
      });
    }

    // Per-scope mass of p(C=1), the recall denominator of Eq. 33.
    slot_mass.Clear();
    for (size_t s = 0; s < num_slots; ++s) {
      slot_mass.AddForSlot(matrix.slot_predicate(s), matrix.slot_website(s),
                           r.slot_correct_prob[s]);
    }

    // ============ Stage II: triple truth p(V_d|X), Eqs. 21/25 ============
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "II.TriplePr");
      }
      ForRange(executor, num_items, [&](size_t begin, size_t end) {
        double local_delta = 0.0;
        // Reused per-item scratch.
        std::vector<uint32_t> values;
        std::vector<double> value_votes;
        for (size_t i = begin; i < end; ++i) {
          const auto [b, e] = matrix.ItemSlots(i);
          values.clear();
          value_votes.clear();
          bool covered = false;
          for (uint32_t s = b; s < e; ++s) {
            const uint32_t w = matrix.slot_source(s);
            double vote = 0.0;
            if (r.source_supported[w]) {
              covered = true;
              const double wc =
                  config.weighted_value_votes
                      ? r.slot_correct_prob[s]
                      : (r.slot_correct_prob[s] > 0.5 ? 1.0 : 0.0);
              const int n = config.num_false_override >= 1
                                ? config.num_false_override
                                : matrix.item_num_false(i);
              if (config.value_model == ValueModel::kAccu) {
                vote = wc * SourceVote(r.source_accuracy[w], n);
              } else {
                const double a = ClampProbability(r.source_accuracy[w]);
                vote = wc * (std::log(a / (1.0 - a)) -
                             SafeLog(slot_popularity[s]));
              }
            }
            // Accumulate by value (values per item are few; linear scan).
            const uint32_t v = matrix.slot_value(s);
            size_t vi = 0;
            for (; vi < values.size(); ++vi) {
              if (values[vi] == v) break;
            }
            if (vi == values.size()) {
              values.push_back(v);
              value_votes.push_back(0.0);
            }
            value_votes[vi] += vote;
          }

          const int n = config.num_false_override >= 1
                            ? config.num_false_override
                            : matrix.item_num_false(i);
          const int unobserved =
              std::max(0, n + 1 - static_cast<int>(values.size()));
          std::vector<double> log_terms(value_votes);
          if (unobserved > 0) {
            log_terms.push_back(std::log(static_cast<double>(unobserved)));
          }
          const double log_z = LogSumExp(log_terms);

          r.item_unobserved_value_prob[i] =
              unobserved > 0 ? std::exp(-log_z) : 0.0;
          for (uint32_t s = b; s < e; ++s) {
            const uint32_t v = matrix.slot_value(s);
            size_t vi = 0;
            for (; vi < values.size(); ++vi) {
              if (values[vi] == v) break;
            }
            const double pv = std::exp(value_votes[vi] - log_z);
            local_delta =
                std::max(local_delta, std::fabs(pv - r.slot_value_prob[s]));
            r.slot_value_prob[s] = pv;
            r.slot_covered[s] = covered ? 1 : 0;
          }
        }
        note_delta(local_delta);
      });
    }

    // ============ Stage III: source accuracy A_w, Eq. 27/28 ============
    if (config.update_source_accuracy) {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "III.SrcAccu");
      }
      ForGroups(executor, num_sources, [&](size_t w) {
        if (!r.source_supported[w]) return;  // Stays at initial value.
        const auto [b, e] = matrix.SourceSlots(static_cast<uint32_t>(w));
        double num = 0.0;
        double den = 0.0;
        for (uint32_t k = b; k < e; ++k) {
          const uint32_t s = matrix.source_slot_index()[k];
          double wc;
          if (config.weighted_value_votes) {
            // Eq. 28: weight every slot by p(C=1|X). Extraction-noise slots
            // contribute little because their posterior is small.
            wc = r.slot_correct_prob[s];
          } else {
            // Eq. 27: MAP estimate — only slots with C-hat = 1 count.
            if (r.slot_correct_prob[s] <= 0.5) continue;
            wc = 1.0;
          }
          num += wc * r.slot_value_prob[s];
          den += wc;
        }
        if (den > 1e-12) {
          r.source_accuracy[w] = clampP(num / den);
        }
      });
    }

    // ---- Prior update for alpha (Eq. 26), Section 3.3.4 ----
    if (config.update_alpha &&
        iteration >= config.alpha_update_start_iteration) {
      ForRange(executor, num_slots, [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          const double v = r.slot_value_prob[s];
          const double a_src = r.source_accuracy[matrix.slot_source(s)];
          double false_mass = (1.0 - v) * (1.0 - a_src);
          if (config.alpha_update_rule == AlphaUpdateRule::kDomainNormalized) {
            const int n = config.num_false_override >= 1
                              ? config.num_false_override
                              : matrix.item_num_false(matrix.slot_item(s));
            false_mass /= std::max(1, n);
          }
          r.slot_alpha[s] = clampP(v * a_src + false_mass);
        }
      });
    }

    // ============ Stage IV: extractor quality, Eqs. 32-33 + Eq. 7 ============
    if (config.update_extractor_quality) {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "IV.ExtQuality");
      }
      ForGroups(executor, num_groups, [&](size_t g) {
        if (!r.extractor_supported[g]) return;
        const auto [b, e] = matrix.ExtractorEdges(static_cast<uint32_t>(g));
        double sum_conf = 0.0;
        double sum_joint = 0.0;
        for (uint32_t k = b; k < e; ++k) {
          const uint32_t edge = matrix.extractor_edge_index()[k];
          const double c = r.slot_correct_prob[matrix.ext_slot(edge)];
          sum_conf += conf[edge];
          sum_joint += conf[edge] * c;
        }
        const ExtractorScope& scope =
            matrix.extractor_scope(static_cast<uint32_t>(g));
        const double denom_r = slot_mass.AtScope(scope) * scope.absence_weight;
        if (sum_conf > 1e-12) {
          r.extractor_precision[g] = clampP(sum_joint / sum_conf);
        }
        if (denom_r > 1e-12) {
          r.extractor_recall[g] = clampP(sum_joint / denom_r);
        }
        // Eq. 7, with a stability guard: Q is capped at R. An extractor that
        // would extract unprovided triples more readily than provided ones
        // carries no signal (Q = R zeroes both votes, like E5 in Table 3);
        // letting Q exceed R flips absence votes into positive evidence and
        // destabilizes EM.
        r.extractor_q[g] = std::min(
            QFromPrecisionRecall(r.extractor_precision[g],
                                 r.extractor_recall[g], config.gamma),
            r.extractor_recall[g]);
      });
    }

    refresh_votes();
    r.iterations = iteration;
    if (max_delta < config.convergence_tol) {
      r.converged = true;
      break;
    }
  }

  return r;
}

}  // namespace kbt::core
