#include "core/multilayer_model.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/math.h"
#include "common/mutex.h"
#include "kernels/kernels.h"

namespace kbt::core {

namespace {

using extract::CompiledMatrix;
using extract::ExtractorScope;
using extract::kAnyScope;

uint64_t PackPredSite(uint32_t pred, uint32_t site) {
  return (static_cast<uint64_t>(pred) << 32) | site;
}

/// Per-scope additive totals. Two uses per iteration:
///  * absence universe: each extractor group deposits its weighted absence
///    vote into the bucket matching its scope; a slot's total absence
///    evidence is the SUM over all four bucket levels covering it;
///  * recall denominators: each slot deposits p(C=1|X) into its exact
///    (predicate, website) bucket plus the coarser levels; a group reads the
///    ONE bucket matching its scope.
class ScopeTable {
 public:
  void Clear() {
    global_ = 0.0;
    by_pred_.clear();
    by_site_.clear();
    by_pred_site_.clear();
  }

  /// Deposits `v` into the bucket identified by `scope` (group-side use).
  void AddForScope(const ExtractorScope& scope, double v) {
    const bool any_pred = scope.predicate == kAnyScope;
    const bool any_site = scope.website == kAnyScope;
    if (any_pred && any_site) {
      global_ += v;
    } else if (!any_pred && any_site) {
      by_pred_[scope.predicate] += v;
    } else if (any_pred && !any_site) {
      by_site_[scope.website] += v;
    } else {
      by_pred_site_[PackPredSite(scope.predicate, scope.website)] += v;
    }
  }

  /// Deposits `v` into every level covering (pred, site) (slot-side use).
  void AddForSlot(uint32_t pred, uint32_t site, double v) {
    global_ += v;
    by_pred_[pred] += v;
    by_site_[site] += v;
    by_pred_site_[PackPredSite(pred, site)] += v;
  }

  /// Total over all buckets covering a slot at (pred, site).
  double SumCovering(uint32_t pred, uint32_t site) const {
    double total = global_;
    if (const auto it = by_pred_.find(pred); it != by_pred_.end()) {
      total += it->second;
    }
    if (const auto it = by_site_.find(site); it != by_site_.end()) {
      total += it->second;
    }
    if (const auto it = by_pred_site_.find(PackPredSite(pred, site));
        it != by_pred_site_.end()) {
      total += it->second;
    }
    return total;
  }

  /// Value of the single bucket matching `scope`.
  double AtScope(const ExtractorScope& scope) const {
    const bool any_pred = scope.predicate == kAnyScope;
    const bool any_site = scope.website == kAnyScope;
    if (any_pred && any_site) return global_;
    if (!any_pred && any_site) {
      const auto it = by_pred_.find(scope.predicate);
      return it == by_pred_.end() ? 0.0 : it->second;
    }
    if (any_pred && !any_site) {
      const auto it = by_site_.find(scope.website);
      return it == by_site_.end() ? 0.0 : it->second;
    }
    const auto it =
        by_pred_site_.find(PackPredSite(scope.predicate, scope.website));
    return it == by_pred_site_.end() ? 0.0 : it->second;
  }

 private:
  double global_ = 0.0;
  std::unordered_map<uint32_t, double> by_pred_;
  std::unordered_map<uint32_t, double> by_site_;
  std::unordered_map<uint64_t, double> by_pred_site_;
};

/// Serial fallbacks when no executor is supplied.
void ForRange(dataflow::Executor* ex, size_t n,
              const std::function<void(size_t, size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForRanges(n, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

void ForGroups(dataflow::Executor* ex, size_t n,
               const std::function<void(size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForGroups(n, fn);
  } else {
    for (size_t g = 0; g < n; ++g) fn(g);
  }
}

}  // namespace

ExtractorVotes ComputeVotes(double recall, double q, double absence_weight) {
  ExtractorVotes v;
  v.presence = PresenceVote(recall, q);
  v.weighted_absence = absence_weight * AbsenceVote(recall, q);
  return v;
}

double UpdatedAlpha(double value_prob, double source_accuracy) {
  return value_prob * source_accuracy +
         (1.0 - value_prob) * (1.0 - source_accuracy);
}

StatusOr<MultiLayerResult> MultiLayerModel::Run(
    const CompiledMatrix& matrix, const MultiLayerConfig& config,
    const InitialQuality& initial, dataflow::Executor* executor,
    dataflow::StageTimers* timers,
    const std::vector<float>* extraction_weights) {
  const size_t num_slots = matrix.num_slots();
  const size_t num_items = matrix.num_items();
  const uint32_t num_sources = matrix.num_sources();
  const uint32_t num_groups = matrix.num_extractor_groups();

  if (extraction_weights != nullptr &&
      extraction_weights->size() != matrix.num_extractions()) {
    return Status::InvalidArgument(
        "extraction_weights size " +
        std::to_string(extraction_weights->size()) + " != num_extractions " +
        std::to_string(matrix.num_extractions()));
  }

  if (!initial.source_accuracy.empty() &&
      initial.source_accuracy.size() != num_sources) {
    return Status::InvalidArgument("initial source_accuracy size mismatch");
  }
  if (!initial.extractor_precision.empty() &&
      initial.extractor_precision.size() != num_groups) {
    return Status::InvalidArgument("initial extractor_precision size mismatch");
  }
  if (!initial.extractor_recall.empty() &&
      initial.extractor_recall.size() != num_groups) {
    return Status::InvalidArgument("initial extractor_recall size mismatch");
  }
  if (config.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  const auto clampP = [&config](double p) {
    return Clamp(p, config.min_probability, config.max_probability);
  };

  MultiLayerResult r;
  // ---- Parameter initialization (Section 3.1 / Section 5 smart init) ----
  r.source_accuracy.assign(num_sources, config.default_source_accuracy);
  if (!initial.source_accuracy.empty()) {
    for (uint32_t w = 0; w < num_sources; ++w) {
      r.source_accuracy[w] = clampP(initial.source_accuracy[w]);
    }
  }
  double default_recall = config.default_recall;
  double default_q = config.default_q;
  if (config.adaptive_initial_recall && initial.extractor_recall.empty() &&
      num_slots > 0) {
    // Method-of-moments starting point: match the initial R to the observed
    // extraction density so iteration 1's absence evidence is well-scaled
    // (see multilayer_config.h).
    ScopeTable universe;
    for (uint32_t g = 0; g < num_groups; ++g) {
      universe.AddForScope(matrix.extractor_scope(g), 1.0);
    }
    double applicable = 0.0;
    for (size_t s = 0; s < num_slots; ++s) {
      applicable +=
          universe.SumCovering(matrix.slot_predicate(s), matrix.slot_website(s));
    }
    const double mean_universe =
        std::max(1.0, applicable / static_cast<double>(num_slots));
    const double edges_per_slot =
        static_cast<double>(matrix.num_extractions()) /
        static_cast<double>(num_slots);
    default_recall = Clamp(edges_per_slot / mean_universe, 0.05,
                           config.default_recall);
    default_q = std::min(config.default_q, default_recall / 2.0);
  }
  r.extractor_recall.assign(num_groups, default_recall);
  if (!initial.extractor_recall.empty()) {
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_recall[e] = clampP(initial.extractor_recall[e]);
    }
  }
  if (!initial.extractor_q.empty() &&
      initial.extractor_q.size() != num_groups) {
    return Status::InvalidArgument("initial extractor_q size mismatch");
  }
  r.extractor_q.assign(num_groups, default_q);
  r.extractor_precision.assign(num_groups, 0.0);
  if (!initial.extractor_q.empty()) {
    // Direct Q initialization (paper examples / default-style init).
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_q[e] = clampP(initial.extractor_q[e]);
      r.extractor_precision[e] = PrecisionFromQ(
          r.extractor_q[e], r.extractor_recall[e], config.gamma);
    }
  } else if (!initial.extractor_precision.empty()) {
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_precision[e] = clampP(initial.extractor_precision[e]);
      r.extractor_q[e] = QFromPrecisionRecall(r.extractor_precision[e],
                                              r.extractor_recall[e],
                                              config.gamma);
    }
  } else {
    for (uint32_t e = 0; e < num_groups; ++e) {
      r.extractor_precision[e] = PrecisionFromQ(
          r.extractor_q[e], r.extractor_recall[e], config.gamma);
    }
  }

  if (!initial.source_trusted.empty() &&
      initial.source_trusted.size() != num_sources) {
    return Status::InvalidArgument("initial source_trusted size mismatch");
  }

  // ---- Support flags (static: structure does not change) ----
  r.source_supported.assign(num_sources, 0);
  for (uint32_t w = 0; w < num_sources; ++w) {
    const auto [b, e] = matrix.SourceSlots(w);
    const bool trusted =
        !initial.source_trusted.empty() && initial.source_trusted[w] != 0;
    r.source_supported[w] =
        (trusted || static_cast<int>(e - b) >= config.min_source_support)
            ? 1
            : 0;
  }
  r.extractor_supported.assign(num_groups, 0);
  for (uint32_t g = 0; g < num_groups; ++g) {
    const auto [b, e] = matrix.ExtractorEdges(g);
    r.extractor_supported[g] =
        (static_cast<int>(e - b) >= config.min_extractor_support) ? 1 : 0;
  }

  // ---- Effective confidence per extraction edge (Section 3.5) ----
  // The optional extraction weight multiplies in *after* the thresholding
  // branch so decay also scales thresholded (0/1) confidences; a null
  // pointer leaves every edge untouched (bit-for-bit the unweighted path).
  std::vector<float> conf(matrix.num_extractions());
  for (size_t e = 0; e < conf.size(); ++e) {
    const float raw = matrix.ext_conf()[e];
    conf[e] = config.use_confidence_weights
                  ? raw
                  : (raw > config.confidence_threshold ? 1.0f : 0.0f);
    if (extraction_weights != nullptr) {
      conf[e] *= (*extraction_weights)[e];
    }
  }

  // ---- POPACCU empirical value popularity per slot ----
  std::vector<double> slot_popularity;
  if (config.value_model == ValueModel::kPopAccu) {
    slot_popularity.resize(num_slots, 0.0);
    for (size_t i = 0; i < num_items; ++i) {
      const auto [b, e] = matrix.ItemSlots(i);
      std::unordered_map<uint32_t, double> counts;
      for (uint32_t s = b; s < e; ++s) counts[matrix.slot_value(s)] += 1.0;
      const double total = static_cast<double>(e - b);
      for (uint32_t s = b; s < e; ++s) {
        slot_popularity[s] = counts[matrix.slot_value(s)] / total;
      }
    }
  }

  // ---- Latent state ----
  r.slot_correct_prob.assign(num_slots, 0.5);
  r.slot_value_prob.assign(num_slots, 0.5);
  r.slot_alpha.assign(num_slots, config.initial_alpha);
  r.slot_covered.assign(num_slots, 0);
  r.item_unobserved_value_prob.assign(num_items, 0.0);

  std::vector<ExtractorVotes> votes(num_groups);
  std::vector<double> slot_logodds(num_slots, 0.0);
  ScopeTable absence_universe;
  ScopeTable slot_mass;

  // Per-group net Stage I vote, presence - weighted absence: the staged
  // path's memo of the difference the scalar reference recomputes per edge
  // (same subtraction on the same inputs, so the same bits).
  std::vector<double> net_vote(num_groups, 0.0);

  const auto refresh_votes = [&]() {
    absence_universe.Clear();
    for (uint32_t g = 0; g < num_groups; ++g) {
      const ExtractorScope& scope = matrix.extractor_scope(g);
      votes[g] = ComputeVotes(r.extractor_recall[g], r.extractor_q[g],
                              scope.absence_weight);
      absence_universe.AddForScope(scope, votes[g].weighted_absence);
      net_vote[g] = votes[g].presence - votes[g].weighted_absence;
    }
  };
  refresh_votes();

  // ---- Kernel streams ----
  const kernels::Kind kind = config.kernel;
  const bool vectorized = kind == kernels::Kind::kVectorized;

  // Stage II gate: source support only (structure is static).
  std::vector<uint8_t> covered_mask(num_slots, 0);
  for (size_t s = 0; s < num_slots; ++s) {
    covered_mask[s] = r.source_supported[matrix.slot_source(s)];
  }

  // The staged E step memoizes one SourceVote per source; that needs one n
  // shared by all items (given by the override, or by all schema n's
  // agreeing — the common case). Otherwise the vectorized kind falls back
  // to per-slot votes.
  int uniform_n = config.num_false_override >= 1 ? config.num_false_override
                                                 : -1;
  if (uniform_n < 1 && num_items > 0) {
    uniform_n = matrix.item_num_false(0);
    for (size_t i = 1; i < num_items; ++i) {
      if (matrix.item_num_false(i) != uniform_n) {
        uniform_n = -1;
        break;
      }
    }
  }
  const bool use_staged = vectorized && uniform_n >= 1;

  std::vector<double> support_mask;
  std::vector<double> log_pop;
  std::vector<double> src_vote;
  std::vector<double> wc_stream;
  std::vector<uint32_t> slot_vi;
  std::vector<uint32_t> item_num_values;
  if (use_staged) {
    support_mask.resize(num_slots);
    for (size_t s = 0; s < num_slots; ++s) {
      support_mask[s] = covered_mask[s] != 0 ? 1.0 : 0.0;
    }
    if (config.value_model == ValueModel::kPopAccu) {
      log_pop.resize(num_slots);
      for (size_t s = 0; s < num_slots; ++s) {
        log_pop[s] = SafeLog(slot_popularity[s]);
      }
    }
    src_vote.resize(num_sources, 0.0);
    if (!config.weighted_value_votes) wc_stream.resize(num_slots, 0.0);
    // The value grouping is a pure function of the static slot layout:
    // discover it once here instead of per item, per iteration.
    slot_vi.resize(num_slots);
    item_num_values.resize(num_items);
    kernels::EmScratch vi_scratch;
    for (size_t i = 0; i < num_items; ++i) {
      const auto [b, e] = matrix.ItemSlots(i);
      item_num_values[i] = kernels::BuildValueIndex(
          b, e, matrix.slot_values().data(), slot_vi.data(), &vi_scratch);
    }
  }

  // Stage I memo of the per-(predicate, website) absence total: slots
  // sharing a scope pair share one SumCovering lookup. Pair ids are
  // assigned in slot order (deterministic).
  std::vector<uint32_t> slot_pair;
  std::vector<uint32_t> pair_pred;
  std::vector<uint32_t> pair_site;
  std::vector<double> pair_absence;
  if (vectorized) {
    slot_pair.resize(num_slots);
    std::unordered_map<uint64_t, uint32_t> pair_ids;
    for (size_t s = 0; s < num_slots; ++s) {
      const uint32_t pred = matrix.slot_predicate(s);
      const uint32_t site = matrix.slot_website(s);
      const auto [it, inserted] = pair_ids.emplace(
          PackPredSite(pred, site), static_cast<uint32_t>(pair_pred.size()));
      if (inserted) {
        pair_pred.push_back(pred);
        pair_site.push_back(site);
      }
      slot_pair[s] = it->second;
    }
    pair_absence.resize(pair_pred.size(), 0.0);
  }

  std::vector<double> delta_per_chunk;  // Convergence tracking.
  Mutex delta_mutex;

  for (int iteration = 1; iteration <= config.max_iterations; ++iteration) {
    double max_delta = 0.0;
    const auto note_delta = [&](double d) {
      MutexLock lock(delta_mutex);
      max_delta = std::max(max_delta, d);
    };

    // ============ Stage I: extraction correctness p(C|X), Eq. 15 ============
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "I.ExtCorr");
      }
      // Log-odds per slot, before the shared calibration intercept. The
      // staged path sweeps the contiguous per-slot edge ranges in blocks
      // (conf[e] * net_vote[group]) and memoizes the absence total per
      // (predicate, website) pair; the per-slot edge sum stays sequential
      // in edge order, so both kinds run the same float program.
      if (vectorized) {
        for (size_t pid = 0; pid < pair_pred.size(); ++pid) {
          pair_absence[pid] =
              absence_universe.SumCovering(pair_pred[pid], pair_site[pid]);
        }
        ForRange(executor, num_slots, [&](size_t begin, size_t end) {
          kernels::EmScratch scratch;
          size_t s = begin;
          while (s < end) {
            const uint32_t eb = matrix.SlotExtractions(s).first;
            uint32_t ee = matrix.SlotExtractions(s).second;
            size_t s2 = s + 1;
            while (s2 < end) {
              const uint32_t se = matrix.SlotExtractions(s2).second;
              if (se - eb > kernels::kStageBlock) break;
              ee = se;
              ++s2;
            }
            scratch.edge_terms.resize(ee - eb);
            kernels::StageEdgeTerms(kind, conf.data(),
                                    matrix.ext_group().data(),
                                    net_vote.data(), eb, ee,
                                    scratch.edge_terms.data());
            for (; s < s2; ++s) {
              double vcc = pair_absence[slot_pair[s]];
              const auto [b2, e2] = matrix.SlotExtractions(s);
              for (uint32_t e = b2; e < e2; ++e) {
                vcc += scratch.edge_terms[e - eb];
              }
              slot_logodds[s] = vcc + Logit(r.slot_alpha[s]);
            }
          }
        });
      } else {
        ForRange(executor, num_slots, [&](size_t begin, size_t end) {
          for (size_t s = begin; s < end; ++s) {
            double vcc = absence_universe.SumCovering(matrix.slot_predicate(s),
                                                      matrix.slot_website(s));
            const auto [eb, ee] = matrix.SlotExtractions(s);
            for (uint32_t e = eb; e < ee; ++e) {
              const uint32_t g = matrix.ext_group()[e];
              vcc += static_cast<double>(conf[e]) *
                     (votes[g].presence - votes[g].weighted_absence);
            }
            slot_logodds[s] = vcc + Logit(r.slot_alpha[s]);
          }
        });
      }

      // Shared intercept: mean p(C|X) is pinned to the expected provided
      // fraction (see multilayer_config.h). Bisection on a monotone mean;
      // the sigmoid sweep runs through the deterministic chunked reduction,
      // so tau is bit-identical for every thread count (and both kernel
      // kinds share this code).
      double tau = 0.0;
      if (config.calibrate_correctness && num_slots > 0) {
        const double target = Clamp(config.expected_provided_fraction,
                                    0.01, 0.99);
        double lo = -30.0;
        double hi = 30.0;
        for (int step = 0; step < 60; ++step) {
          tau = 0.5 * (lo + hi);
          const double mean =
              dataflow::BlockedSum(
                  executor, num_slots,
                  [&](size_t begin, size_t end) {
                    double m = 0.0;
                    for (size_t s = begin; s < end; ++s) {
                      m += Sigmoid(slot_logodds[s] + tau);
                    }
                    return m;
                  }) /
              static_cast<double>(num_slots);
          if (mean < target) {
            lo = tau;
          } else {
            hi = tau;
          }
        }
      }

      ForRange(executor, num_slots, [&](size_t begin, size_t end) {
        double local_delta = 0.0;
        for (size_t s = begin; s < end; ++s) {
          const double c = Sigmoid(slot_logodds[s] + tau);
          local_delta = std::max(local_delta,
                                 std::fabs(c - r.slot_correct_prob[s]));
          r.slot_correct_prob[s] = c;
        }
        note_delta(local_delta);
      });
    }

    // Per-scope mass of p(C=1), the recall denominator of Eq. 33.
    slot_mass.Clear();
    for (size_t s = 0; s < num_slots; ++s) {
      slot_mass.AddForSlot(matrix.slot_predicate(s), matrix.slot_website(s),
                           r.slot_correct_prob[s]);
    }

    // ============ Stage II: triple truth p(V_d|X), Eqs. 21/25 ============
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "II.TriplePr");
      }
      if (use_staged) {
        // Per-iteration memo streams: one SourceVote (or log-odds) per
        // source, and the per-slot correctness weight (Eq. 25 soft weight,
        // or its MAP threshold).
        if (config.value_model == ValueModel::kAccu) {
          for (uint32_t w = 0; w < num_sources; ++w) {
            src_vote[w] = SourceVote(r.source_accuracy[w], uniform_n);
          }
        } else {
          for (uint32_t w = 0; w < num_sources; ++w) {
            const double a = ClampProbability(r.source_accuracy[w]);
            src_vote[w] = std::log(a / (1.0 - a));
          }
        }
        const double* wc_ptr = r.slot_correct_prob.data();
        if (!config.weighted_value_votes) {
          for (size_t s = 0; s < num_slots; ++s) {
            wc_stream[s] = r.slot_correct_prob[s] > 0.5 ? 1.0 : 0.0;
          }
          wc_ptr = wc_stream.data();
        }
        ForRange(executor, num_items, [&](size_t begin, size_t end) {
          double local_delta = 0.0;
          kernels::EmScratch scratch;
          size_t i = begin;
          while (i < end) {
            const uint32_t slot_b = matrix.ItemSlots(i).first;
            uint32_t slot_e = matrix.ItemSlots(i).second;
            size_t j = i + 1;
            while (j < end) {
              const uint32_t je = matrix.ItemSlots(j).second;
              if (je - slot_b > kernels::kStageBlock) break;
              slot_e = je;
              ++j;
            }
            scratch.votes.resize(slot_e - slot_b);
            if (config.value_model == ValueModel::kAccu) {
              kernels::StageVotesMasked(
                  kind, support_mask.data(), wc_ptr,
                  matrix.slot_sources().data(), src_vote.data(), slot_b,
                  slot_e, scratch.votes.data());
            } else {
              kernels::StageVotesMaskedSub(
                  kind, support_mask.data(), wc_ptr,
                  matrix.slot_sources().data(), src_vote.data(),
                  log_pop.data(), slot_b, slot_e, scratch.votes.data());
            }
            for (; i < j; ++i) {
              const auto [b, e] = matrix.ItemSlots(i);
              local_delta = std::max(
                  local_delta,
                  kernels::ItemValuePassIndexed(
                      b, e, scratch.votes.data(), slot_b,
                      covered_mask.data(), slot_vi.data(),
                      item_num_values[i], uniform_n,
                      r.slot_value_prob.data(), r.slot_covered.data(),
                      &r.item_unobserved_value_prob[i], &scratch));
            }
          }
          note_delta(local_delta);
        });
      } else {
        ForRange(executor, num_items, [&](size_t begin, size_t end) {
          double local_delta = 0.0;
          kernels::EmScratch scratch;
          for (size_t i = begin; i < end; ++i) {
            const auto [b, e] = matrix.ItemSlots(i);
            const int n = config.num_false_override >= 1
                              ? config.num_false_override
                              : matrix.item_num_false(i);
            scratch.votes.resize(e - b);
            for (uint32_t s = b; s < e; ++s) {
              const uint32_t w = matrix.slot_source(s);
              double vote = 0.0;
              if (r.source_supported[w]) {
                const double wc =
                    config.weighted_value_votes
                        ? r.slot_correct_prob[s]
                        : (r.slot_correct_prob[s] > 0.5 ? 1.0 : 0.0);
                if (config.value_model == ValueModel::kAccu) {
                  vote = wc * SourceVote(r.source_accuracy[w], n);
                } else {
                  const double a = ClampProbability(r.source_accuracy[w]);
                  vote = wc * (std::log(a / (1.0 - a)) -
                               SafeLog(slot_popularity[s]));
                }
              }
              scratch.votes[s - b] = vote;
            }
            local_delta = std::max(
                local_delta,
                kernels::ItemValuePass(
                    kind, b, e, scratch.votes.data(), b, covered_mask.data(),
                    matrix.slot_values().data(), n, r.slot_value_prob.data(),
                    r.slot_covered.data(), &r.item_unobserved_value_prob[i],
                    &scratch));
          }
          note_delta(local_delta);
        });
      }
    }

    // ============ Stage III: source accuracy A_w, Eq. 27/28 ============
    if (config.update_source_accuracy) {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "III.SrcAccu");
      }
      ForGroups(executor, num_sources, [&](size_t w) {
        if (!r.source_supported[w]) return;  // Stays at initial value.
        const auto [b, e] = matrix.SourceSlots(static_cast<uint32_t>(w));
        const uint32_t* idx = matrix.source_slot_index().data() + b;
        // Eq. 28 weights every slot by p(C=1|X); Eq. 27 is the MAP variant
        // (only C-hat = 1 slots count, as a masked tally so the lane
        // assignment stays positional across kernel kinds).
        const kernels::Tally tally =
            config.weighted_value_votes
                ? kernels::TallyIndexed(kind, idx, e - b,
                                        r.slot_correct_prob.data(),
                                        r.slot_value_prob.data())
                : kernels::TallyMap(kind, idx, e - b,
                                    r.slot_correct_prob.data(),
                                    r.slot_value_prob.data());
        if (tally.den > 1e-12) {
          r.source_accuracy[w] = clampP(tally.num / tally.den);
        }
      });
    }

    // ---- Prior update for alpha (Eq. 26), Section 3.3.4 ----
    if (config.update_alpha &&
        iteration >= config.alpha_update_start_iteration) {
      ForRange(executor, num_slots, [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          const double v = r.slot_value_prob[s];
          const double a_src = r.source_accuracy[matrix.slot_source(s)];
          double false_mass = (1.0 - v) * (1.0 - a_src);
          if (config.alpha_update_rule == AlphaUpdateRule::kDomainNormalized) {
            const int n = config.num_false_override >= 1
                              ? config.num_false_override
                              : matrix.item_num_false(matrix.slot_item(s));
            false_mass /= std::max(1, n);
          }
          r.slot_alpha[s] = clampP(v * a_src + false_mass);
        }
      });
    }

    // ============ Stage IV: extractor quality, Eqs. 32-33 + Eq. 7 ============
    if (config.update_extractor_quality) {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                           "IV.ExtQuality");
      }
      ForGroups(executor, num_groups, [&](size_t g) {
        if (!r.extractor_supported[g]) return;
        const auto [b, e] = matrix.ExtractorEdges(static_cast<uint32_t>(g));
        const kernels::Tally tally = kernels::TallyEdges(
            kind, matrix.extractor_edge_index().data() + b, e - b, conf.data(),
            matrix.ext_slots().data(), r.slot_correct_prob.data());
        const double sum_joint = tally.num;
        const double sum_conf = tally.den;
        const ExtractorScope& scope =
            matrix.extractor_scope(static_cast<uint32_t>(g));
        const double denom_r = slot_mass.AtScope(scope) * scope.absence_weight;
        if (sum_conf > 1e-12) {
          r.extractor_precision[g] = clampP(sum_joint / sum_conf);
        }
        if (denom_r > 1e-12) {
          r.extractor_recall[g] = clampP(sum_joint / denom_r);
        }
        // Eq. 7, with a stability guard: Q is capped at R. An extractor that
        // would extract unprovided triples more readily than provided ones
        // carries no signal (Q = R zeroes both votes, like E5 in Table 3);
        // letting Q exceed R flips absence votes into positive evidence and
        // destabilizes EM.
        r.extractor_q[g] = std::min(
            QFromPrecisionRecall(r.extractor_precision[g],
                                 r.extractor_recall[g], config.gamma),
            r.extractor_recall[g]);
      });
    }

    refresh_votes();
    r.iterations = iteration;
    if (max_delta < config.convergence_tol) {
      r.converged = true;
      break;
    }
  }

  return r;
}

}  // namespace kbt::core
