#ifndef KBT_CORE_MULTILAYER_MODEL_H_
#define KBT_CORE_MULTILAYER_MODEL_H_

#include "common/status.h"
#include "dataflow/parallel.h"
#include "dataflow/stage_timer.h"
#include "extract/observation_matrix.h"
#include "core/multilayer_config.h"
#include "core/multilayer_result.h"

namespace kbt::core {

/// The paper's primary contribution: joint inference over extraction
/// correctness (C_wdv), triple truth (V_d), source accuracies (A_w) and
/// extractor quality (P_e, R_e, Q_e) — Algorithm 1 (MULTILAYER).
///
/// Each iteration runs four parallel stages whose timings can be captured
/// for the Table 7 reproduction:
///   I.ExtCorr    p(C_wdv|X)  via vote counts (Eqs. 12-15, confidence-
///                weighted per Section 3.5, Eq. 31);
///   II.TriplePr  p(V_d|X)    via source votes (Eqs. 19-25), weighted by
///                p(C|X) when config.weighted_value_votes;
///   III.SrcAccu  A_w         via Eq. 28 (or the MAP Eq. 27);
///   IV.ExtQuality P_e, R_e   via Eqs. 32-33, then Q_e via Eq. 7;
/// plus the prior update for alpha (Eq. 26) from the configured iteration.
///
/// Absence votes: every extractor group whose scope covers a slot casts its
/// absence vote when it did not extract the slot; the per-slot sum is
/// computed in O(#extractions) using per-scope totals, so an iteration is
/// linear in the number of observations.
class MultiLayerModel {
 public:
  /// Runs inference on a compiled matrix. `initial` may be empty (defaults).
  /// `executor`/`timers` may be null (serial execution, no timings).
  /// `extraction_weights`, when non-null, must hold one multiplier in [0, 1]
  /// per extraction edge (matrix.num_extractions()); it scales each edge's
  /// effective confidence before the votes (the streaming layer's time-decay
  /// hook — Section 3.5 treats confidence as evidence strength, so decayed
  /// evidence is simply weaker evidence). nullptr is bit-for-bit identical
  /// to all-ones.
  static StatusOr<MultiLayerResult> Run(
      const extract::CompiledMatrix& matrix, const MultiLayerConfig& config,
      const InitialQuality& initial = {},
      dataflow::Executor* executor = nullptr,
      dataflow::StageTimers* timers = nullptr,
      const std::vector<float>* extraction_weights = nullptr);
};

/// Presence/absence votes of one extractor group at its current quality
/// (Eqs. 12-13), with the group's absence weight folded in.
struct ExtractorVotes {
  double presence = 0.0;       // Pre_e = log R - log Q
  double weighted_absence = 0.0;  // absence_weight * (log(1-R) - log(1-Q))
};

/// Computes votes from quality parameters; exposed for tests (Table 3).
ExtractorVotes ComputeVotes(double recall, double q, double absence_weight);

/// Eq. (26): the re-estimated prior p(C_wdv = 1) given the current triple
/// probability and source accuracy. Example 3.3: (0.004, 0.6) -> ~0.4.
double UpdatedAlpha(double value_prob, double source_accuracy);

}  // namespace kbt::core

#endif  // KBT_CORE_MULTILAYER_MODEL_H_
