#include "core/kbt_score.h"

namespace kbt::core {

namespace {

void Accumulate(KbtScore& score, double c, double v) {
  score.kbt += c * v;  // Numerator until Finalize.
  score.evidence += c;
}

void Finalize(std::vector<KbtScore>& scores) {
  for (KbtScore& s : scores) {
    s.kbt = s.evidence > 1e-12 ? s.kbt / s.evidence : 0.0;
  }
}

}  // namespace

std::vector<KbtScore> ComputeWebsiteKbt(const extract::CompiledMatrix& matrix,
                                        const MultiLayerResult& result,
                                        uint32_t num_websites) {
  std::vector<KbtScore> scores(num_websites);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint32_t site = matrix.slot_website(s);
    if (site >= num_websites) continue;
    Accumulate(scores[site], result.slot_correct_prob[s],
               result.slot_value_prob[s]);
  }
  Finalize(scores);
  return scores;
}

std::vector<KbtScore> ComputeSourceKbt(const extract::CompiledMatrix& matrix,
                                       const MultiLayerResult& result) {
  std::vector<KbtScore> scores(matrix.num_sources());
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    Accumulate(scores[matrix.slot_source(s)], result.slot_correct_prob[s],
               result.slot_value_prob[s]);
  }
  Finalize(scores);
  return scores;
}

}  // namespace kbt::core
