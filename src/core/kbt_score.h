#ifndef KBT_CORE_KBT_SCORE_H_
#define KBT_CORE_KBT_SCORE_H_

#include <vector>

#include "extract/observation_matrix.h"
#include "core/multilayer_result.h"

namespace kbt::core {

/// Knowledge-Based Trust of one website (or page): the probability-weighted
/// accuracy of the facts the model believes the site provides. This is
/// Eq. 28 aggregated at reporting granularity:
///   KBT = sum_slots p(C=1|X) p(V=v|X) / sum_slots p(C=1|X).
/// `evidence` is the denominator — the expected number of correctly
/// extracted triples; the paper only reports KBT for sources with at least
/// 5 of them (Section 5.4).
struct KbtScore {
  double kbt = 0.0;
  double evidence = 0.0;

  bool HasScore(double min_evidence = 5.0) const {
    return evidence >= min_evidence;
  }
};

/// Aggregates slot posteriors to per-website KBT. `num_websites` must cover
/// every slot_website value in the matrix.
std::vector<KbtScore> ComputeWebsiteKbt(const extract::CompiledMatrix& matrix,
                                        const MultiLayerResult& result,
                                        uint32_t num_websites);

/// Aggregates slot posteriors per source group (page-level KBT when sources
/// are pages).
std::vector<KbtScore> ComputeSourceKbt(const extract::CompiledMatrix& matrix,
                                       const MultiLayerResult& result);

}  // namespace kbt::core

#endif  // KBT_CORE_KBT_SCORE_H_
