#include "fusion/single_layer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/math.h"
#include "common/mutex.h"
#include "kernels/kernels.h"

namespace kbt::fusion {

namespace {

using core::ValueModel;
using extract::CompiledMatrix;

void ForRange(dataflow::Executor* ex, size_t n,
              const std::function<void(size_t, size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForRanges(n, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

void ForGroups(dataflow::Executor* ex, size_t n,
               const std::function<void(size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForGroups(n, fn);
  } else {
    for (size_t g = 0; g < n; ++g) fn(g);
  }
}

}  // namespace

StatusOr<SingleLayerResult> SingleLayerModel::Run(
    const CompiledMatrix& matrix, const SingleLayerConfig& config,
    const std::vector<double>& initial_accuracy, dataflow::Executor* executor,
    dataflow::StageTimers* timers, const std::vector<uint8_t>& initial_trusted,
    const std::vector<float>* extraction_weights) {
  const size_t num_slots = matrix.num_slots();
  const size_t num_items = matrix.num_items();
  const uint32_t num_sources = matrix.num_sources();

  if (extraction_weights != nullptr &&
      extraction_weights->size() != matrix.num_extractions()) {
    return Status::InvalidArgument("extraction_weights size mismatch");
  }
  if (!initial_accuracy.empty() && initial_accuracy.size() != num_sources) {
    return Status::InvalidArgument("initial_accuracy size mismatch");
  }
  if (!initial_trusted.empty() && initial_trusted.size() != num_sources) {
    return Status::InvalidArgument("initial_trusted size mismatch");
  }
  if (config.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  const auto clampP = [&config](double p) {
    return Clamp(p, config.min_probability, config.max_probability);
  };

  SingleLayerResult r;
  r.source_accuracy.assign(num_sources, config.default_accuracy);
  if (!initial_accuracy.empty()) {
    for (uint32_t s = 0; s < num_sources; ++s) {
      r.source_accuracy[s] = clampP(initial_accuracy[s]);
    }
  }
  r.source_supported.assign(num_sources, 0);
  for (uint32_t w = 0; w < num_sources; ++w) {
    const auto [b, e] = matrix.SourceSlots(w);
    const bool trusted = !initial_trusted.empty() && initial_trusted[w] != 0;
    r.source_supported[w] =
        (trusted || static_cast<int>(e - b) >= config.min_source_support)
            ? 1
            : 0;
  }
  r.slot_value_prob.assign(num_slots, 0.5);
  r.slot_covered.assign(num_slots, 0);
  r.item_unobserved_value_prob.assign(num_items, 0.0);

  // Claim weight per slot: max extraction confidence (the provenance's own
  // confidence in the claim), or a 0/1 threshold. With extraction weights,
  // each edge's effective (post-threshold) confidence is scaled before the
  // max — so a slot whose freshest edge decayed carries a weaker claim; the
  // null-weight loop is kept verbatim so that path stays bit-for-bit.
  std::vector<double> claim_weight(num_slots, 0.0);
  for (size_t s = 0; s < num_slots; ++s) {
    const auto [eb, ee] = matrix.SlotExtractions(s);
    if (extraction_weights == nullptr) {
      float best = 0.0f;
      for (uint32_t e = eb; e < ee; ++e) {
        best = std::max(best, matrix.ext_conf()[e]);
      }
      claim_weight[s] = config.use_confidence_weights
                            ? best
                            : (best > config.confidence_threshold ? 1.0 : 0.0);
    } else {
      float best = 0.0f;
      for (uint32_t e = eb; e < ee; ++e) {
        const float raw = matrix.ext_conf()[e];
        const float eff =
            config.use_confidence_weights
                ? raw
                : (raw > config.confidence_threshold ? 1.0f : 0.0f);
        best = std::max(best, eff * (*extraction_weights)[e]);
      }
      claim_weight[s] = best;
    }
  }

  // POPACCU popularity.
  std::vector<double> slot_popularity;
  if (config.value_model == ValueModel::kPopAccu) {
    slot_popularity.resize(num_slots, 0.0);
    for (size_t i = 0; i < num_items; ++i) {
      const auto [b, e] = matrix.ItemSlots(i);
      std::unordered_map<uint32_t, double> counts;
      for (uint32_t s = b; s < e; ++s) counts[matrix.slot_value(s)] += 1.0;
      const double total = static_cast<double>(e - b);
      for (uint32_t s = b; s < e; ++s) {
        slot_popularity[s] = counts[matrix.slot_value(s)] / total;
      }
    }
  }

  // ---- Kernel streams (fixed across iterations) ----
  const kernels::Kind kind = config.kernel;

  // Per-slot coverage gate of the E step; the structure never changes, so
  // the mask is computed once and shared by both kernel kinds.
  std::vector<uint8_t> covered_mask(num_slots, 0);
  for (size_t s = 0; s < num_slots; ++s) {
    covered_mask[s] = (r.source_supported[matrix.slot_source(s)] != 0 &&
                       claim_weight[s] > 0.0)
                          ? 1
                          : 0;
  }

  // The vectorized kind memoizes the per-source vote (one SourceVote/log
  // per source per iteration instead of one per slot). That needs a single
  // n across items; with per-item schema n's the memo only applies when
  // they all agree, otherwise the staged path falls back to per-slot votes.
  int uniform_n = config.num_false_override >= 1 ? config.num_false_override
                                                 : -1;
  if (uniform_n < 1 && num_items > 0) {
    uniform_n = matrix.item_num_false(0);
    for (size_t i = 1; i < num_items; ++i) {
      if (matrix.item_num_false(i) != uniform_n) {
        uniform_n = -1;
        break;
      }
    }
  }
  const bool use_staged =
      kind == kernels::Kind::kVectorized && uniform_n >= 1;

  // SoA streams of the staged path. All values are bit-identical to what
  // the scalar reference computes inline: the same functions on the same
  // inputs, evaluated once instead of per slot.
  std::vector<double> support_mask;
  std::vector<double> log_pop;
  std::vector<double> src_vote;
  std::vector<uint32_t> slot_vi;
  std::vector<uint32_t> item_num_values;
  if (use_staged) {
    support_mask.resize(num_slots);
    for (size_t s = 0; s < num_slots; ++s) {
      support_mask[s] =
          r.source_supported[matrix.slot_source(s)] != 0 ? 1.0 : 0.0;
    }
    if (config.value_model == ValueModel::kPopAccu) {
      log_pop.resize(num_slots);
      for (size_t s = 0; s < num_slots; ++s) {
        log_pop[s] = SafeLog(slot_popularity[s]);
      }
    }
    src_vote.resize(num_sources, 0.0);
    // The value grouping is a pure function of the static slot layout:
    // discover it once here instead of per item, per iteration.
    slot_vi.resize(num_slots);
    item_num_values.resize(num_items);
    kernels::EmScratch vi_scratch;
    for (size_t i = 0; i < num_items; ++i) {
      const auto [b, e] = matrix.ItemSlots(i);
      item_num_values[i] = kernels::BuildValueIndex(
          b, e, matrix.slot_values().data(), slot_vi.data(), &vi_scratch);
    }
  }

  Mutex delta_mutex;
  for (int iteration = 1; iteration <= config.max_iterations; ++iteration) {
    double max_delta = 0.0;

    if (use_staged) {
      // Per-iteration vote table: kAccu stages claim * SourceVote(A_w, n),
      // POPACCU stages claim * (log-odds(A_w) - log popularity).
      if (config.value_model == ValueModel::kAccu) {
        for (uint32_t w = 0; w < num_sources; ++w) {
          src_vote[w] = SourceVote(r.source_accuracy[w], uniform_n);
        }
      } else {
        for (uint32_t w = 0; w < num_sources; ++w) {
          const double a = ClampProbability(r.source_accuracy[w]);
          src_vote[w] = std::log(a / (1.0 - a));
        }
      }
    }

    // ---- E step: p(V_d | X, A), Eq. 2 ----
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(
            *timers, "SL.TriplePr");
      }
      ForRange(executor, num_items, [&](size_t begin, size_t end) {
        double local_delta = 0.0;
        kernels::EmScratch scratch;
        if (use_staged) {
          // Cache-blocked: stage votes for runs of items whose slots fit in
          // one kStageBlock sweep (items are slot-contiguous), then finish
          // each item through the kind-dispatched ItemValuePass.
          size_t i = begin;
          while (i < end) {
            const uint32_t slot_b = matrix.ItemSlots(i).first;
            uint32_t slot_e = matrix.ItemSlots(i).second;
            size_t j = i + 1;
            while (j < end) {
              const uint32_t je = matrix.ItemSlots(j).second;
              if (je - slot_b > kernels::kStageBlock) break;
              slot_e = je;
              ++j;
            }
            scratch.votes.resize(slot_e - slot_b);
            if (config.value_model == ValueModel::kAccu) {
              kernels::StageVotesMasked(
                  kind, support_mask.data(), claim_weight.data(),
                  matrix.slot_sources().data(), src_vote.data(), slot_b,
                  slot_e, scratch.votes.data());
            } else {
              kernels::StageVotesMaskedSub(
                  kind, support_mask.data(), claim_weight.data(),
                  matrix.slot_sources().data(), src_vote.data(),
                  log_pop.data(), slot_b, slot_e, scratch.votes.data());
            }
            for (; i < j; ++i) {
              const auto [b, e] = matrix.ItemSlots(i);
              local_delta = std::max(
                  local_delta,
                  kernels::ItemValuePassIndexed(
                      b, e, scratch.votes.data(), slot_b,
                      covered_mask.data(), slot_vi.data(),
                      item_num_values[i], uniform_n,
                      r.slot_value_prob.data(), r.slot_covered.data(),
                      &r.item_unobserved_value_prob[i], &scratch));
            }
          }
        } else {
          // Scalar reference: per-slot votes exactly as the paper's Eq. 2
          // transcription; the per-item normalization is the kind-dispatched
          // ItemValuePass (its reference write-back — bit-identical to the
          // memoized one the staged path uses).
          for (size_t i = begin; i < end; ++i) {
            const auto [b, e] = matrix.ItemSlots(i);
            const int n = config.num_false_override >= 1
                              ? config.num_false_override
                              : matrix.item_num_false(i);
            scratch.votes.resize(e - b);
            for (uint32_t s = b; s < e; ++s) {
              const uint32_t w = matrix.slot_source(s);
              double vote = 0.0;
              if (r.source_supported[w] && claim_weight[s] > 0.0) {
                if (config.value_model == ValueModel::kAccu) {
                  vote = claim_weight[s] * SourceVote(r.source_accuracy[w], n);
                } else {
                  const double a = ClampProbability(r.source_accuracy[w]);
                  vote = claim_weight[s] * (std::log(a / (1.0 - a)) -
                                            SafeLog(slot_popularity[s]));
                }
              }
              scratch.votes[s - b] = vote;
            }
            local_delta = std::max(
                local_delta,
                kernels::ItemValuePass(
                    kind, b, e, scratch.votes.data(), b, covered_mask.data(),
                    matrix.slot_values().data(), n, r.slot_value_prob.data(),
                    r.slot_covered.data(), &r.item_unobserved_value_prob[i],
                    &scratch));
          }
        }
        MutexLock lock(delta_mutex);
        max_delta = std::max(max_delta, local_delta);
      });
    }

    // ---- M step: A_s, Eq. 4 ----
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(
            *timers, "SL.SrcAccu");
      }
      ForGroups(executor, num_sources, [&](size_t w) {
        if (!r.source_supported[w]) return;
        const auto [b, e] = matrix.SourceSlots(static_cast<uint32_t>(w));
        const kernels::Tally tally = kernels::TallyIndexed(
            kind, matrix.source_slot_index().data() + b, e - b,
            claim_weight.data(), r.slot_value_prob.data());
        if (tally.den > 1e-12) {
          r.source_accuracy[w] = clampP(tally.num / tally.den);
        }
      });
    }

    r.iterations = iteration;
    if (max_delta < config.convergence_tol) {
      r.converged = true;
      break;
    }
  }

  return r;
}

std::vector<double> AccuracyByWebsite(const extract::CompiledMatrix& matrix,
                                      const std::vector<double>& slot_probs,
                                      uint32_t num_websites,
                                      double default_accuracy) {
  std::vector<double> sums(num_websites, 0.0);
  std::vector<double> counts(num_websites, 0.0);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint32_t site = matrix.slot_website(s);
    if (site >= num_websites) continue;
    sums[site] += slot_probs[s];
    counts[site] += 1.0;
  }
  std::vector<double> out(num_websites, default_accuracy);
  for (uint32_t w = 0; w < num_websites; ++w) {
    if (counts[w] > 0.0) out[w] = sums[w] / counts[w];
  }
  return out;
}

}  // namespace kbt::fusion
