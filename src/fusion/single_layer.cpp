#include "fusion/single_layer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/math.h"
#include "common/mutex.h"

namespace kbt::fusion {

namespace {

using core::ValueModel;
using extract::CompiledMatrix;

void ForRange(dataflow::Executor* ex, size_t n,
              const std::function<void(size_t, size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForRanges(n, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

void ForGroups(dataflow::Executor* ex, size_t n,
               const std::function<void(size_t)>& fn) {
  if (ex != nullptr) {
    ex->ParallelForGroups(n, fn);
  } else {
    for (size_t g = 0; g < n; ++g) fn(g);
  }
}

}  // namespace

StatusOr<SingleLayerResult> SingleLayerModel::Run(
    const CompiledMatrix& matrix, const SingleLayerConfig& config,
    const std::vector<double>& initial_accuracy, dataflow::Executor* executor,
    dataflow::StageTimers* timers, const std::vector<uint8_t>& initial_trusted,
    const std::vector<float>* extraction_weights) {
  const size_t num_slots = matrix.num_slots();
  const size_t num_items = matrix.num_items();
  const uint32_t num_sources = matrix.num_sources();

  if (extraction_weights != nullptr &&
      extraction_weights->size() != matrix.num_extractions()) {
    return Status::InvalidArgument("extraction_weights size mismatch");
  }
  if (!initial_accuracy.empty() && initial_accuracy.size() != num_sources) {
    return Status::InvalidArgument("initial_accuracy size mismatch");
  }
  if (!initial_trusted.empty() && initial_trusted.size() != num_sources) {
    return Status::InvalidArgument("initial_trusted size mismatch");
  }
  if (config.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  const auto clampP = [&config](double p) {
    return Clamp(p, config.min_probability, config.max_probability);
  };

  SingleLayerResult r;
  r.source_accuracy.assign(num_sources, config.default_accuracy);
  if (!initial_accuracy.empty()) {
    for (uint32_t s = 0; s < num_sources; ++s) {
      r.source_accuracy[s] = clampP(initial_accuracy[s]);
    }
  }
  r.source_supported.assign(num_sources, 0);
  for (uint32_t w = 0; w < num_sources; ++w) {
    const auto [b, e] = matrix.SourceSlots(w);
    const bool trusted = !initial_trusted.empty() && initial_trusted[w] != 0;
    r.source_supported[w] =
        (trusted || static_cast<int>(e - b) >= config.min_source_support)
            ? 1
            : 0;
  }
  r.slot_value_prob.assign(num_slots, 0.5);
  r.slot_covered.assign(num_slots, 0);
  r.item_unobserved_value_prob.assign(num_items, 0.0);

  // Claim weight per slot: max extraction confidence (the provenance's own
  // confidence in the claim), or a 0/1 threshold. With extraction weights,
  // each edge's effective (post-threshold) confidence is scaled before the
  // max — so a slot whose freshest edge decayed carries a weaker claim; the
  // null-weight loop is kept verbatim so that path stays bit-for-bit.
  std::vector<double> claim_weight(num_slots, 0.0);
  for (size_t s = 0; s < num_slots; ++s) {
    const auto [eb, ee] = matrix.SlotExtractions(s);
    if (extraction_weights == nullptr) {
      float best = 0.0f;
      for (uint32_t e = eb; e < ee; ++e) {
        best = std::max(best, matrix.ext_conf()[e]);
      }
      claim_weight[s] = config.use_confidence_weights
                            ? best
                            : (best > config.confidence_threshold ? 1.0 : 0.0);
    } else {
      float best = 0.0f;
      for (uint32_t e = eb; e < ee; ++e) {
        const float raw = matrix.ext_conf()[e];
        const float eff =
            config.use_confidence_weights
                ? raw
                : (raw > config.confidence_threshold ? 1.0f : 0.0f);
        best = std::max(best, eff * (*extraction_weights)[e]);
      }
      claim_weight[s] = best;
    }
  }

  // POPACCU popularity.
  std::vector<double> slot_popularity;
  if (config.value_model == ValueModel::kPopAccu) {
    slot_popularity.resize(num_slots, 0.0);
    for (size_t i = 0; i < num_items; ++i) {
      const auto [b, e] = matrix.ItemSlots(i);
      std::unordered_map<uint32_t, double> counts;
      for (uint32_t s = b; s < e; ++s) counts[matrix.slot_value(s)] += 1.0;
      const double total = static_cast<double>(e - b);
      for (uint32_t s = b; s < e; ++s) {
        slot_popularity[s] = counts[matrix.slot_value(s)] / total;
      }
    }
  }

  Mutex delta_mutex;
  for (int iteration = 1; iteration <= config.max_iterations; ++iteration) {
    double max_delta = 0.0;

    // ---- E step: p(V_d | X, A), Eq. 2 ----
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(
            *timers, "SL.TriplePr");
      }
      ForRange(executor, num_items, [&](size_t begin, size_t end) {
        double local_delta = 0.0;
        std::vector<uint32_t> values;
        std::vector<double> value_votes;
        for (size_t i = begin; i < end; ++i) {
          const auto [b, e] = matrix.ItemSlots(i);
          values.clear();
          value_votes.clear();
          bool covered = false;
          const int n = config.num_false_override >= 1
                            ? config.num_false_override
                            : matrix.item_num_false(i);
          for (uint32_t s = b; s < e; ++s) {
            const uint32_t w = matrix.slot_source(s);
            double vote = 0.0;
            if (r.source_supported[w] && claim_weight[s] > 0.0) {
              covered = true;
              if (config.value_model == ValueModel::kAccu) {
                vote = claim_weight[s] * SourceVote(r.source_accuracy[w], n);
              } else {
                const double a = ClampProbability(r.source_accuracy[w]);
                vote = claim_weight[s] * (std::log(a / (1.0 - a)) -
                                          SafeLog(slot_popularity[s]));
              }
            }
            const uint32_t v = matrix.slot_value(s);
            size_t vi = 0;
            for (; vi < values.size(); ++vi) {
              if (values[vi] == v) break;
            }
            if (vi == values.size()) {
              values.push_back(v);
              value_votes.push_back(0.0);
            }
            value_votes[vi] += vote;
          }

          const int unobserved =
              std::max(0, n + 1 - static_cast<int>(values.size()));
          std::vector<double> log_terms(value_votes);
          if (unobserved > 0) {
            log_terms.push_back(std::log(static_cast<double>(unobserved)));
          }
          const double log_z = LogSumExp(log_terms);
          r.item_unobserved_value_prob[i] =
              unobserved > 0 ? std::exp(-log_z) : 0.0;

          for (uint32_t s = b; s < e; ++s) {
            const uint32_t v = matrix.slot_value(s);
            size_t vi = 0;
            for (; vi < values.size(); ++vi) {
              if (values[vi] == v) break;
            }
            const double pv = std::exp(value_votes[vi] - log_z);
            local_delta =
                std::max(local_delta, std::fabs(pv - r.slot_value_prob[s]));
            r.slot_value_prob[s] = pv;
            r.slot_covered[s] = covered ? 1 : 0;
          }
        }
        MutexLock lock(delta_mutex);
        max_delta = std::max(max_delta, local_delta);
      });
    }

    // ---- M step: A_s, Eq. 4 ----
    {
      std::unique_ptr<dataflow::StageTimers::Scope> t;
      if (timers) {
        t = std::make_unique<dataflow::StageTimers::Scope>(
            *timers, "SL.SrcAccu");
      }
      ForGroups(executor, num_sources, [&](size_t w) {
        if (!r.source_supported[w]) return;
        const auto [b, e] = matrix.SourceSlots(static_cast<uint32_t>(w));
        double num = 0.0;
        double den = 0.0;
        for (uint32_t k = b; k < e; ++k) {
          const uint32_t s = matrix.source_slot_index()[k];
          num += claim_weight[s] * r.slot_value_prob[s];
          den += claim_weight[s];
        }
        if (den > 1e-12) r.source_accuracy[w] = clampP(num / den);
      });
    }

    r.iterations = iteration;
    if (max_delta < config.convergence_tol) {
      r.converged = true;
      break;
    }
  }

  return r;
}

std::vector<double> AccuracyByWebsite(const extract::CompiledMatrix& matrix,
                                      const std::vector<double>& slot_probs,
                                      uint32_t num_websites,
                                      double default_accuracy) {
  std::vector<double> sums(num_websites, 0.0);
  std::vector<double> counts(num_websites, 0.0);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    const uint32_t site = matrix.slot_website(s);
    if (site >= num_websites) continue;
    sums[site] += slot_probs[s];
    counts[site] += 1.0;
  }
  std::vector<double> out(num_websites, default_accuracy);
  for (uint32_t w = 0; w < num_websites; ++w) {
    if (counts[w] > 0.0) out[w] = sums[w] / counts[w];
  }
  return out;
}

}  // namespace kbt::fusion
