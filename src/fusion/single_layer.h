#ifndef KBT_FUSION_SINGLE_LAYER_H_
#define KBT_FUSION_SINGLE_LAYER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dataflow/parallel.h"
#include "dataflow/stage_timer.h"
#include "extract/observation_matrix.h"
#include "core/multilayer_config.h"

namespace kbt::fusion {

/// Configuration of the single-layer baseline (Section 2.2), the
/// state-of-the-art knowledge-fusion method of Dong et al. PVLDB'14 that the
/// paper compares against. The paper's settings: each source is the
/// provenance 4-tuple <extractor, website, predicate, pattern>, n = 100,
/// 5 iterations.
struct SingleLayerConfig {
  int max_iterations = 5;
  double convergence_tol = 1e-4;
  double default_accuracy = 0.8;
  /// n for Eq. (1); the paper uses 100 for the single-layer model. < 1 uses
  /// the per-item schema value.
  int num_false_override = 100;
  core::ValueModel value_model = core::ValueModel::kAccu;
  /// Weight claims by extraction confidence; when false, threshold at
  /// `confidence_threshold`.
  bool use_confidence_weights = true;
  double confidence_threshold = 0.0;
  /// Provenances with fewer claims keep default accuracy and are excluded
  /// from fusion (the paper's coverage rule, Section 5.1.2).
  int min_source_support = 3;
  double min_probability = 1e-4;
  double max_probability = 1.0 - 1e-4;
  /// EM kernel implementation (bit-for-bit equivalent kinds; see
  /// src/kernels/kernels.h for the contract).
  kernels::Kind kernel = kernels::DefaultKind();
};

/// Output of the single-layer EM.
struct SingleLayerResult {
  /// A_s per provenance group ((w,e) pair at the configured granularity).
  std::vector<double> source_accuracy;
  std::vector<uint8_t> source_supported;
  /// p(V_d = v_slot | X) per claim slot.
  std::vector<double> slot_value_prob;
  std::vector<uint8_t> slot_covered;
  /// Probability mass per item left to each unobserved domain value.
  std::vector<double> item_unobserved_value_prob;
  int iterations = 0;
  bool converged = false;
};

/// The ACCU/POPACCU single-layer EM of Section 2.2 (Eqs. 1-4). It runs on a
/// CompiledMatrix whose *source groups are provenances*
/// (granularity::ProvenanceAssignment); the extraction layer of the matrix
/// is ignored — an extracted triple is taken at face value as a claim of its
/// provenance, which is exactly the baseline's weakness the multi-layer
/// model fixes.
class SingleLayerModel {
 public:
  /// `initial_trusted` marks provenances whose accuracy was anchored by a
  /// gold standard; they participate even below min_source_support (the
  /// paper's "accuracy does not remain default" coverage rule).
  /// `extraction_weights`, when non-null, holds one multiplier in [0, 1] per
  /// extraction edge and scales each edge's confidence before the claim
  /// weights (the streaming layer's time-decay hook); nullptr is bit-for-bit
  /// identical to all-ones.
  static StatusOr<SingleLayerResult> Run(
      const extract::CompiledMatrix& matrix, const SingleLayerConfig& config,
      const std::vector<double>& initial_accuracy = {},
      dataflow::Executor* executor = nullptr,
      dataflow::StageTimers* timers = nullptr,
      const std::vector<uint8_t>& initial_trusted = {},
      const std::vector<float>* extraction_weights = nullptr);
};

/// Mean predicted truth probability of all claim slots grouped by website:
/// the baseline's way of scoring a web source, "considering all extracted
/// triples as provided by the source" (used for the SqA comparison in
/// Figure 3 and the single-layer KBT proxy).
std::vector<double> AccuracyByWebsite(const extract::CompiledMatrix& matrix,
                                      const std::vector<double>& slot_probs,
                                      uint32_t num_websites,
                                      double default_accuracy);

}  // namespace kbt::fusion

#endif  // KBT_FUSION_SINGLE_LAYER_H_
