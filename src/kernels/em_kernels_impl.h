#ifndef KBT_KERNELS_EM_KERNELS_IMPL_H_
#define KBT_KERNELS_EM_KERNELS_IMPL_H_

#include <cstddef>
#include <cstdint>

#include "kernels/kernels.h"

/// Internal seams between the dispatcher (em_kernels.cpp) and the per-ISA
/// translation units. Every entry point implements the contract documented
/// in kernels.h; the scalar tail handling inside the ISA paths MUST land
/// element k in lane k % kTallyLanes and combine lanes with CombineLanes so
/// results stay bit-for-bit equal to the scalar reference.
/// `#pragma omp simd`-style hint for the elementwise staging loops: tells the
/// auto-vectorizer the loop is dependence-free. Elementwise staging has no
/// reduction to reassociate and the module compiles with -ffp-contract=off,
/// so auto-vectorizing these loops cannot change results.
#if defined(_OPENMP)
#define KBT_KERNELS_SIMD_LOOP _Pragma("omp simd")
#elif defined(__clang__)
#define KBT_KERNELS_SIMD_LOOP _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define KBT_KERNELS_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define KBT_KERNELS_SIMD_LOOP
#endif

namespace kbt::kernels::internal {

/// The contract's lane combine: (l0 + l1) + (l2 + l3). Every tally — scalar
/// or SIMD — funnels through this exact expression.
inline double CombineLanes(const double lanes[kTallyLanes]) {
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

// Scalar reference implementations (always compiled; also the tail/fallback
// for the vectorized kind when no vector ISA is active).
Tally TallyIndexedScalar(const uint32_t* idx, size_t n, const double* w,
                         const double* p);
Tally TallyMapScalar(const uint32_t* idx, size_t n, const double* c,
                     const double* p);
Tally TallyEdgesScalar(const uint32_t* edges, size_t n, const float* conf,
                       const uint32_t* edge_slot, const double* c);
void StageVotesScalar(const double* weight, const uint32_t* index,
                      const double* table, size_t begin, size_t end,
                      double* out);
void StageVotesMaskedScalar(const double* mask, const double* weight,
                            const uint32_t* index, const double* table,
                            size_t begin, size_t end, double* out);
void StageVotesSubScalar(const double* weight, const uint32_t* index,
                         const double* table, const double* sub, size_t begin,
                         size_t end, double* out);
void StageVotesMaskedSubScalar(const double* mask, const double* weight,
                               const uint32_t* index, const double* table,
                               const double* sub, size_t begin, size_t end,
                               double* out);
void StageEdgeTermsScalar(const float* conf, const uint32_t* group,
                          const double* net, size_t begin, size_t end,
                          double* out);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KBT_KERNELS_HAVE_AVX2 1
Tally TallyIndexedAvx2(const uint32_t* idx, size_t n, const double* w,
                       const double* p);
Tally TallyMapAvx2(const uint32_t* idx, size_t n, const double* c,
                   const double* p);
Tally TallyEdgesAvx2(const uint32_t* edges, size_t n, const float* conf,
                     const uint32_t* edge_slot, const double* c);
void StageVotesAvx2(const double* weight, const uint32_t* index,
                    const double* table, size_t begin, size_t end,
                    double* out);
void StageVotesMaskedAvx2(const double* mask, const double* weight,
                          const uint32_t* index, const double* table,
                          size_t begin, size_t end, double* out);
void StageVotesSubAvx2(const double* weight, const uint32_t* index,
                       const double* table, const double* sub, size_t begin,
                       size_t end, double* out);
void StageVotesMaskedSubAvx2(const double* mask, const double* weight,
                             const uint32_t* index, const double* table,
                             const double* sub, size_t begin, size_t end,
                             double* out);
void StageEdgeTermsAvx2(const float* conf, const uint32_t* group,
                        const double* net, size_t begin, size_t end,
                        double* out);
#endif

#if defined(__aarch64__)
#define KBT_KERNELS_HAVE_NEON 1
Tally TallyIndexedNeon(const uint32_t* idx, size_t n, const double* w,
                       const double* p);
Tally TallyMapNeon(const uint32_t* idx, size_t n, const double* c,
                   const double* p);
Tally TallyEdgesNeon(const uint32_t* edges, size_t n, const float* conf,
                     const uint32_t* edge_slot, const double* c);
void StageVotesNeon(const double* weight, const uint32_t* index,
                    const double* table, size_t begin, size_t end,
                    double* out);
void StageVotesMaskedNeon(const double* mask, const double* weight,
                          const uint32_t* index, const double* table,
                          size_t begin, size_t end, double* out);
void StageVotesSubNeon(const double* weight, const uint32_t* index,
                       const double* table, const double* sub, size_t begin,
                       size_t end, double* out);
void StageVotesMaskedSubNeon(const double* mask, const double* weight,
                             const uint32_t* index, const double* table,
                             const double* sub, size_t begin, size_t end,
                             double* out);
void StageEdgeTermsNeon(const float* conf, const uint32_t* group,
                        const double* net, size_t begin, size_t end,
                        double* out);
#endif

}  // namespace kbt::kernels::internal

#endif  // KBT_KERNELS_EM_KERNELS_IMPL_H_
