// NEON (aarch64) lanes of the EM kernels. NEON doubles are 2-wide, so the
// contract's 4 lanes map onto a register pair: acc0 holds lanes {0, 1},
// acc1 holds lanes {2, 3}; element k still lands in lane k % 4 and the final
// combine is the shared CombineLanes, so results are bit-for-bit equal to the
// scalar reference. Gathers are scalar loads (NEON has none); the win is the
// vertical multiply/add stream. vmulq/vaddq are kept separate — fmla fusion
// would break parity, and the module builds with -ffp-contract=off.
#include "kernels/em_kernels_impl.h"

#if defined(KBT_KERNELS_HAVE_NEON)

#include <arm_neon.h>

namespace kbt::kernels::internal {

namespace {

inline float64x2_t Pair(double lo, double hi) {
  return vcombine_f64(vdup_n_f64(lo), vdup_n_f64(hi));
}

inline void StoreLanes(double lanes[kTallyLanes], float64x2_t acc0,
                       float64x2_t acc1) {
  vst1q_f64(lanes, acc0);
  vst1q_f64(lanes + 2, acc1);
}

}  // namespace

Tally TallyIndexedNeon(const uint32_t* idx, size_t n, const double* w,
                       const double* p) {
  float64x2_t num0 = vdupq_n_f64(0.0), num1 = vdupq_n_f64(0.0);
  float64x2_t den0 = vdupq_n_f64(0.0), den1 = vdupq_n_f64(0.0);
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    const uint32_t s0 = idx[k], s1 = idx[k + 1], s2 = idx[k + 2],
                   s3 = idx[k + 3];
    const float64x2_t w01 = Pair(w[s0], w[s1]);
    const float64x2_t w23 = Pair(w[s2], w[s3]);
    const float64x2_t p01 = Pair(p[s0], p[s1]);
    const float64x2_t p23 = Pair(p[s2], p[s3]);
    num0 = vaddq_f64(num0, vmulq_f64(w01, p01));
    num1 = vaddq_f64(num1, vmulq_f64(w23, p23));
    den0 = vaddq_f64(den0, w01);
    den1 = vaddq_f64(den1, w23);
  }
  double num_lanes[kTallyLanes];
  double den_lanes[kTallyLanes];
  StoreLanes(num_lanes, num0, num1);
  StoreLanes(den_lanes, den0, den1);
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t s = idx[k];
    num_lanes[j] += w[s] * p[s];
    den_lanes[j] += w[s];
  }
  return Tally{CombineLanes(num_lanes), CombineLanes(den_lanes)};
}

Tally TallyMapNeon(const uint32_t* idx, size_t n, const double* c,
                   const double* p) {
  float64x2_t num0 = vdupq_n_f64(0.0), num1 = vdupq_n_f64(0.0);
  float64x2_t den0 = vdupq_n_f64(0.0), den1 = vdupq_n_f64(0.0);
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    const uint32_t s0 = idx[k], s1 = idx[k + 1], s2 = idx[k + 2],
                   s3 = idx[k + 3];
    const float64x2_t m01 =
        Pair(c[s0] > 0.5 ? 1.0 : 0.0, c[s1] > 0.5 ? 1.0 : 0.0);
    const float64x2_t m23 =
        Pair(c[s2] > 0.5 ? 1.0 : 0.0, c[s3] > 0.5 ? 1.0 : 0.0);
    const float64x2_t p01 = Pair(p[s0], p[s1]);
    const float64x2_t p23 = Pair(p[s2], p[s3]);
    num0 = vaddq_f64(num0, vmulq_f64(m01, p01));
    num1 = vaddq_f64(num1, vmulq_f64(m23, p23));
    den0 = vaddq_f64(den0, m01);
    den1 = vaddq_f64(den1, m23);
  }
  double num_lanes[kTallyLanes];
  double den_lanes[kTallyLanes];
  StoreLanes(num_lanes, num0, num1);
  StoreLanes(den_lanes, den0, den1);
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t s = idx[k];
    const double m = c[s] > 0.5 ? 1.0 : 0.0;
    num_lanes[j] += m * p[s];
    den_lanes[j] += m;
  }
  return Tally{CombineLanes(num_lanes), CombineLanes(den_lanes)};
}

Tally TallyEdgesNeon(const uint32_t* edges, size_t n, const float* conf,
                     const uint32_t* edge_slot, const double* c) {
  float64x2_t num0 = vdupq_n_f64(0.0), num1 = vdupq_n_f64(0.0);
  float64x2_t den0 = vdupq_n_f64(0.0), den1 = vdupq_n_f64(0.0);
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    const uint32_t e0 = edges[k], e1 = edges[k + 1], e2 = edges[k + 2],
                   e3 = edges[k + 3];
    const float64x2_t w01 = Pair(static_cast<double>(conf[e0]),
                                 static_cast<double>(conf[e1]));
    const float64x2_t w23 = Pair(static_cast<double>(conf[e2]),
                                 static_cast<double>(conf[e3]));
    const float64x2_t c01 = Pair(c[edge_slot[e0]], c[edge_slot[e1]]);
    const float64x2_t c23 = Pair(c[edge_slot[e2]], c[edge_slot[e3]]);
    num0 = vaddq_f64(num0, vmulq_f64(w01, c01));
    num1 = vaddq_f64(num1, vmulq_f64(w23, c23));
    den0 = vaddq_f64(den0, w01);
    den1 = vaddq_f64(den1, w23);
  }
  double num_lanes[kTallyLanes];
  double den_lanes[kTallyLanes];
  StoreLanes(num_lanes, num0, num1);
  StoreLanes(den_lanes, den0, den1);
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t e = edges[k];
    const double w = static_cast<double>(conf[e]);
    num_lanes[j] += w * c[edge_slot[e]];
    den_lanes[j] += w;
  }
  return Tally{CombineLanes(num_lanes), CombineLanes(den_lanes)};
}

void StageVotesNeon(const double* weight, const uint32_t* index,
                    const double* table, size_t begin, size_t end,
                    double* out) {
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const float64x2_t vt = Pair(table[index[i]], table[index[i + 1]]);
    const float64x2_t vw = vld1q_f64(weight + i);
    vst1q_f64(out + (i - begin), vmulq_f64(vw, vt));
  }
  for (; i < end; ++i) out[i - begin] = weight[i] * table[index[i]];
}

void StageVotesMaskedNeon(const double* mask, const double* weight,
                          const uint32_t* index, const double* table,
                          size_t begin, size_t end, double* out) {
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const float64x2_t vt = Pair(table[index[i]], table[index[i + 1]]);
    const float64x2_t vm = vld1q_f64(mask + i);
    const float64x2_t vw = vld1q_f64(weight + i);
    vst1q_f64(out + (i - begin), vmulq_f64(vmulq_f64(vm, vw), vt));
  }
  for (; i < end; ++i) {
    out[i - begin] = (mask[i] * weight[i]) * table[index[i]];
  }
}

void StageVotesSubNeon(const double* weight, const uint32_t* index,
                       const double* table, const double* sub, size_t begin,
                       size_t end, double* out) {
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const float64x2_t vt = Pair(table[index[i]], table[index[i + 1]]);
    const float64x2_t vs = vld1q_f64(sub + i);
    const float64x2_t vw = vld1q_f64(weight + i);
    vst1q_f64(out + (i - begin), vmulq_f64(vw, vsubq_f64(vt, vs)));
  }
  for (; i < end; ++i) {
    out[i - begin] = weight[i] * (table[index[i]] - sub[i]);
  }
}

void StageVotesMaskedSubNeon(const double* mask, const double* weight,
                             const uint32_t* index, const double* table,
                             const double* sub, size_t begin, size_t end,
                             double* out) {
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const float64x2_t vt = Pair(table[index[i]], table[index[i + 1]]);
    const float64x2_t vs = vld1q_f64(sub + i);
    const float64x2_t vm = vld1q_f64(mask + i);
    const float64x2_t vw = vld1q_f64(weight + i);
    vst1q_f64(out + (i - begin),
              vmulq_f64(vmulq_f64(vm, vw), vsubq_f64(vt, vs)));
  }
  for (; i < end; ++i) {
    out[i - begin] = (mask[i] * weight[i]) * (table[index[i]] - sub[i]);
  }
}

void StageEdgeTermsNeon(const float* conf, const uint32_t* group,
                        const double* net, size_t begin, size_t end,
                        double* out) {
  size_t e = begin;
  for (; e + 2 <= end; e += 2) {
    const float64x2_t vw = vcvt_f64_f32(vld1_f32(conf + e));
    const float64x2_t vn = Pair(net[group[e]], net[group[e + 1]]);
    vst1q_f64(out + (e - begin), vmulq_f64(vw, vn));
  }
  for (; e < end; ++e) {
    out[e - begin] = static_cast<double>(conf[e]) * net[group[e]];
  }
}

}  // namespace kbt::kernels::internal

#endif  // KBT_KERNELS_HAVE_NEON
