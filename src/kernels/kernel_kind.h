#ifndef KBT_KERNELS_KERNEL_KIND_H_
#define KBT_KERNELS_KERNEL_KIND_H_

#include <cstdint>
#include <string_view>

namespace kbt::kernels {

/// Which implementation of the EM inner-loop kernels a model run uses.
/// Both kinds execute the SAME float program — the deterministic blocked
/// reduction contract (see kernels.h) pins the accumulation order — so
/// their outputs are bit-for-bit identical; the parity suite in
/// tests/kernels/ enforces that. The scalar reference is the oracle: a
/// straightforward transcription of the paper's equations that is always
/// compiled and never ISA-dispatched.
enum class Kind : uint8_t {
  /// Naive per-slot loops, no staging, no SIMD. The testing oracle.
  kScalarReference = 0,
  /// Structure-of-arrays staging, cache-blocked sweeps, per-source vote
  /// memoization and AVX2/NEON inner loops (scalar fallback when the ISA
  /// is unavailable). Bit-for-bit equal to kScalarReference.
  kVectorized = 1,
};

/// The build-selected default (-DKBT_KERNELS=scalar_reference flips it to
/// the oracle so a CI leg runs the whole suite on the reference path).
Kind DefaultKind();

/// Stable display name: "scalar_reference" / "vectorized".
std::string_view KindName(Kind kind);

}  // namespace kbt::kernels

#endif  // KBT_KERNELS_KERNEL_KIND_H_
