#ifndef KBT_KERNELS_KERNELS_H_
#define KBT_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "kernels/kernel_kind.h"

/// kbt::kernels — vectorized, cache-blocked EM inner loops.
///
/// The 3-layer EM over the extraction cube (Dong et al., VLDB 2015, Sec. 4)
/// spends its time in four loop shapes: staging per-slot vote streams
/// (E step / Stage I), grouping votes per item, and weighted tallies over
/// the per-source / per-extractor CSR index lists (M steps / Stage IV).
/// This module implements those shapes twice — a scalar reference and an
/// ISA-dispatched vectorized path — under one contract:
///
/// DETERMINISTIC REDUCTION CONTRACT. Every tally accumulates into
/// kTallyLanes independent accumulators, element k landing in lane
/// k % kTallyLanes, and the lanes combine as (l0 + l1) + (l2 + l3). The
/// lane count and combine order are part of the contract, NOT an
/// implementation detail: a 4-wide SIMD vertical accumulation produces
/// exactly this order, so the scalar reference and the AVX2/NEON paths
/// execute the same float program and their results match bit for bit, on
/// any thread count and any ISA. Changing kTallyLanes or the combine order
/// is a semantic change to every score the system serves.
///
/// Staging kernels are elementwise (no reduction), so their parity needs
/// only identical per-element arithmetic; none of them may be compiled
/// with FP contraction (the build sets -ffp-contract=off on this module
/// and on the model layers, so a fused multiply-add can never make the
/// scalar and vector paths round differently).
namespace kbt::kernels {

/// Lanes of the deterministic blocked tally (== 4 doubles: one AVX2
/// register, two NEON registers). Part of the numeric contract.
inline constexpr size_t kTallyLanes = 4;

/// Cache-blocking unit for staged sweeps: slots/edges are staged and
/// consumed in blocks of at most this many elements so the staged stream
/// stays in L1/L2. Purely a performance knob — block boundaries never
/// affect results (staging is elementwise).
inline constexpr size_t kStageBlock = 4096;

/// Vector ISA the vectorized kind dispatches to at runtime.
enum class Isa : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The ISA the vectorized kind resolves to on this machine (detected once;
/// AVX2 via cpuid on x86-64, NEON unconditionally on aarch64).
Isa ActiveIsa();

/// Stable display name: "scalar" / "avx2" / "neon".
std::string_view IsaName(Isa isa);

/// A weighted tally: num = sum w*p, den = sum w (the shared shape of the
/// paper's M steps, Eqs. 4/27/28/32).
struct Tally {
  double num = 0.0;
  double den = 0.0;
};

// ---------------------------------------------------------------------------
// Blocked deterministic tallies over CSR index lists
// ---------------------------------------------------------------------------

/// num = sum_k w[idx[k]] * p[idx[k]], den = sum_k w[idx[k]] over the n-entry
/// index list, in lane order. The per-source M-step tally: idx is the
/// source's slot list, w the claim/correctness weights, p the value
/// posteriors.
Tally TallyIndexed(Kind kind, const uint32_t* idx, size_t n, const double* w,
                   const double* p);

/// MAP tally (Eq. 27): num = sum_k [c[idx[k]] > 0.5] * p[idx[k]],
/// den = sum_k [c[idx[k]] > 0.5]. Masked lanes add +0.0 (never skip), so
/// lane assignment stays positional.
Tally TallyMap(Kind kind, const uint32_t* idx, size_t n, const double* c,
               const double* p);

/// Extractor-quality tally (Eqs. 32/33): over the group's edge list,
/// num = sum_k conf[e_k] * c[edge_slot[e_k]], den = sum_k conf[e_k], with
/// conf widened float -> double before the multiply (exact).
Tally TallyEdges(Kind kind, const uint32_t* edges, size_t n,
                 const float* conf, const uint32_t* edge_slot,
                 const double* c);

// ---------------------------------------------------------------------------
// Elementwise staging sweeps (contiguous [begin, end) ranges)
// ---------------------------------------------------------------------------

/// out[i] = weight[i] * table[index[i]] for i in [begin, end). The E-step
/// vote staging: weight is the per-slot claim/correctness stream, table the
/// per-source vote memo. out is indexed relative to begin (out[0]
/// corresponds to element `begin`).
void StageVotes(Kind kind, const double* weight, const uint32_t* index,
                const double* table, size_t begin, size_t end, double* out);

/// out[i] = (mask[i] * weight[i]) * table[index[i]]. Multilayer Stage II:
/// mask is the 0/1 source-support stream (as doubles), weight the
/// per-iteration p(C|X) stream.
void StageVotesMasked(Kind kind, const double* mask, const double* weight,
                      const uint32_t* index, const double* table,
                      size_t begin, size_t end, double* out);

/// out[i] = weight[i] * (table[index[i]] - sub[i]). The POPACCU vote:
/// table holds per-source log-odds, sub the per-slot log-popularity memo.
void StageVotesSub(Kind kind, const double* weight, const uint32_t* index,
                   const double* table, const double* sub, size_t begin,
                   size_t end, double* out);

/// out[i] = (mask[i] * weight[i]) * (table[index[i]] - sub[i]). Multilayer
/// POPACCU Stage II.
void StageVotesMaskedSub(Kind kind, const double* mask, const double* weight,
                         const uint32_t* index, const double* table,
                         const double* sub, size_t begin, size_t end,
                         double* out);

/// out[e] = double(conf[e]) * net[group[e]] for e in [begin, end): the
/// Stage I per-edge extraction-correctness term, net[g] = Pre_g - w*Abs_g.
void StageEdgeTerms(Kind kind, const float* conf, const uint32_t* group,
                    const double* net, size_t begin, size_t end, double* out);

// ---------------------------------------------------------------------------
// Shared per-item E-step finisher
// ---------------------------------------------------------------------------

/// Reusable per-worker scratch for the E-step item pass. One instance per
/// parallel chunk replaces the former fresh-std::vector-per-item churn
/// (`value_votes` / `log_terms` in the pre-kernel model code); buffers grow
/// to the largest item seen and are reused for the rest of the chunk.
struct EmScratch {
  std::vector<uint32_t> values;
  std::vector<double> value_votes;
  std::vector<double> log_terms;
  /// Per-slot index into `values`, recorded during the grouping scan so
  /// the posterior write-back is a gather instead of a re-search, with the
  /// normalized exp computed once per distinct value.
  std::vector<uint32_t> slot_vi;
  /// Staged per-slot votes for the current block (vectorized kind) or the
  /// current item (scalar reference).
  std::vector<double> votes;
  /// Staged per-edge Stage I terms for the current block.
  std::vector<double> edge_terms;
};

/// Groups one item's staged votes by distinct value, normalizes through
/// LogSumExp over the observed values plus the unobserved-value mass
/// (Eqs. 2/21), and writes the slot posteriors, the covered flags and the
/// item's unobserved-value probability.
///
/// The grouping scan and the normalizer are shared between kinds; the
/// write-back dispatches on `kind`. The reference kind keeps the naive
/// program (linear value re-search + one exp per slot — the verbatim
/// pre-kernel model code, written for obviousness, not speed). The
/// vectorized kind records each slot's value index during the grouping
/// scan, computes exp(value_votes[vi] - log_z) once per DISTINCT value and
/// gathers per slot — the same expression on the same inputs, so the
/// posteriors are bit-for-bit identical (enforced by the parity suite and
/// the bench_table7 hard gate).
///
/// `votes[s - votes_offset]` is the vote of slot s; `covered_mask[s]` is
/// the per-slot coverage contribution (the item is covered when any of its
/// slots contributes). `num_false` is the item's effective n. Returns the
/// item's max |delta p| against the previous posteriors.
double ItemValuePass(Kind kind, uint32_t slot_begin, uint32_t slot_end,
                     const double* votes, size_t votes_offset,
                     const uint8_t* covered_mask, const uint32_t* slot_values,
                     int num_false, double* slot_value_prob,
                     uint8_t* slot_covered, double* item_unobserved,
                     EmScratch* scratch);

/// ItemValuePass with the value grouping precompiled: `slot_vi[s]` is slot
/// s's index among its item's `num_values` distinct values (a pure function
/// of the static slot_values layout, so it is hoisted out of the iteration
/// loop and computed once per Run). The vote accumulation visits slots in
/// the same ascending order as the scanning version, the normalizer is the
/// same, and the write-back is the vectorized gather — so the result is
/// bit-for-bit identical to ItemValuePass on either kind (asserted by the
/// parity suite). Used by the staged (vectorized) model paths only; the
/// scalar reference keeps rediscovering the grouping per item, per
/// iteration, as the naive program does.
double ItemValuePassIndexed(uint32_t slot_begin, uint32_t slot_end,
                            const double* votes, size_t votes_offset,
                            const uint8_t* covered_mask,
                            const uint32_t* slot_vi, uint32_t num_values,
                            int num_false, double* slot_value_prob,
                            uint8_t* slot_covered, double* item_unobserved,
                            EmScratch* scratch);

/// Fills `slot_vi[s]` (absolute slot indexing) for every slot of item range
/// [slot_begin, slot_end) and returns the number of distinct values, using
/// the exact first-occurrence ordering of the ItemValuePass grouping scan.
/// `scratch->values` is the search buffer. One call per item at staging
/// setup replaces the per-iteration rediscovery.
uint32_t BuildValueIndex(uint32_t slot_begin, uint32_t slot_end,
                         const uint32_t* slot_values, uint32_t* slot_vi,
                         EmScratch* scratch);

}  // namespace kbt::kernels

#endif  // KBT_KERNELS_KERNELS_H_
