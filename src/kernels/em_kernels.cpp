#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/math.h"
#include "kernels/em_kernels_impl.h"
#include "kernels/kernel_kind.h"
#include "kernels/kernels.h"

namespace kbt::kernels {

namespace internal {

Tally TallyIndexedScalar(const uint32_t* idx, size_t n, const double* w,
                         const double* p) {
  double num[kTallyLanes] = {0.0, 0.0, 0.0, 0.0};
  double den[kTallyLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    for (size_t j = 0; j < kTallyLanes; ++j) {
      const uint32_t s = idx[k + j];
      num[j] += w[s] * p[s];
      den[j] += w[s];
    }
  }
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t s = idx[k];
    num[j] += w[s] * p[s];
    den[j] += w[s];
  }
  return Tally{CombineLanes(num), CombineLanes(den)};
}

Tally TallyMapScalar(const uint32_t* idx, size_t n, const double* c,
                     const double* p) {
  double num[kTallyLanes] = {0.0, 0.0, 0.0, 0.0};
  double den[kTallyLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    for (size_t j = 0; j < kTallyLanes; ++j) {
      const uint32_t s = idx[k + j];
      const double m = c[s] > 0.5 ? 1.0 : 0.0;
      num[j] += m * p[s];
      den[j] += m;
    }
  }
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t s = idx[k];
    const double m = c[s] > 0.5 ? 1.0 : 0.0;
    num[j] += m * p[s];
    den[j] += m;
  }
  return Tally{CombineLanes(num), CombineLanes(den)};
}

Tally TallyEdgesScalar(const uint32_t* edges, size_t n, const float* conf,
                       const uint32_t* edge_slot, const double* c) {
  double num[kTallyLanes] = {0.0, 0.0, 0.0, 0.0};
  double den[kTallyLanes] = {0.0, 0.0, 0.0, 0.0};
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    for (size_t j = 0; j < kTallyLanes; ++j) {
      const uint32_t e = edges[k + j];
      const double w = static_cast<double>(conf[e]);
      num[j] += w * c[edge_slot[e]];
      den[j] += w;
    }
  }
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t e = edges[k];
    const double w = static_cast<double>(conf[e]);
    num[j] += w * c[edge_slot[e]];
    den[j] += w;
  }
  return Tally{CombineLanes(num), CombineLanes(den)};
}

void StageVotesScalar(const double* weight, const uint32_t* index,
                      const double* table, size_t begin, size_t end,
                      double* out) {
  KBT_KERNELS_SIMD_LOOP
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = weight[i] * table[index[i]];
  }
}

void StageVotesMaskedScalar(const double* mask, const double* weight,
                            const uint32_t* index, const double* table,
                            size_t begin, size_t end, double* out) {
  KBT_KERNELS_SIMD_LOOP
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = (mask[i] * weight[i]) * table[index[i]];
  }
}

void StageVotesSubScalar(const double* weight, const uint32_t* index,
                         const double* table, const double* sub, size_t begin,
                         size_t end, double* out) {
  KBT_KERNELS_SIMD_LOOP
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = weight[i] * (table[index[i]] - sub[i]);
  }
}

void StageVotesMaskedSubScalar(const double* mask, const double* weight,
                               const uint32_t* index, const double* table,
                               const double* sub, size_t begin, size_t end,
                               double* out) {
  KBT_KERNELS_SIMD_LOOP
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = (mask[i] * weight[i]) * (table[index[i]] - sub[i]);
  }
}

void StageEdgeTermsScalar(const float* conf, const uint32_t* group,
                          const double* net, size_t begin, size_t end,
                          double* out) {
  KBT_KERNELS_SIMD_LOOP
  for (size_t e = begin; e < end; ++e) {
    out[e - begin] = static_cast<double>(conf[e]) * net[group[e]];
  }
}

namespace {

Isa DetectIsa() {
#if defined(KBT_KERNELS_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

}  // namespace
}  // namespace internal

Isa ActiveIsa() {
  static const Isa isa = internal::DetectIsa();
  return isa;
}

std::string_view IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Kind DefaultKind() {
#if defined(KBT_KERNELS_DEFAULT_SCALAR)
  return Kind::kScalarReference;
#else
  return Kind::kVectorized;
#endif
}

std::string_view KindName(Kind kind) {
  switch (kind) {
    case Kind::kScalarReference:
      return "scalar_reference";
    case Kind::kVectorized:
      return "vectorized";
  }
  return "unknown";
}

namespace {

bool UseVector(Kind kind, Isa isa) {
  return kind == Kind::kVectorized && isa != Isa::kScalar;
}

}  // namespace

Tally TallyIndexed(Kind kind, const uint32_t* idx, size_t n, const double* w,
                   const double* p) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) return internal::TallyIndexedAvx2(idx, n, w, p);
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) return internal::TallyIndexedNeon(idx, n, w, p);
#endif
  }
  return internal::TallyIndexedScalar(idx, n, w, p);
}

Tally TallyMap(Kind kind, const uint32_t* idx, size_t n, const double* c,
               const double* p) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) return internal::TallyMapAvx2(idx, n, c, p);
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) return internal::TallyMapNeon(idx, n, c, p);
#endif
  }
  return internal::TallyMapScalar(idx, n, c, p);
}

Tally TallyEdges(Kind kind, const uint32_t* edges, size_t n, const float* conf,
                 const uint32_t* edge_slot, const double* c) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) {
      return internal::TallyEdgesAvx2(edges, n, conf, edge_slot, c);
    }
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) {
      return internal::TallyEdgesNeon(edges, n, conf, edge_slot, c);
    }
#endif
  }
  return internal::TallyEdgesScalar(edges, n, conf, edge_slot, c);
}

void StageVotes(Kind kind, const double* weight, const uint32_t* index,
                const double* table, size_t begin, size_t end, double* out) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) {
      internal::StageVotesAvx2(weight, index, table, begin, end, out);
      return;
    }
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) {
      internal::StageVotesNeon(weight, index, table, begin, end, out);
      return;
    }
#endif
  }
  internal::StageVotesScalar(weight, index, table, begin, end, out);
}

void StageVotesMasked(Kind kind, const double* mask, const double* weight,
                      const uint32_t* index, const double* table, size_t begin,
                      size_t end, double* out) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) {
      internal::StageVotesMaskedAvx2(mask, weight, index, table, begin, end,
                                     out);
      return;
    }
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) {
      internal::StageVotesMaskedNeon(mask, weight, index, table, begin, end,
                                     out);
      return;
    }
#endif
  }
  internal::StageVotesMaskedScalar(mask, weight, index, table, begin, end, out);
}

void StageVotesSub(Kind kind, const double* weight, const uint32_t* index,
                   const double* table, const double* sub, size_t begin,
                   size_t end, double* out) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) {
      internal::StageVotesSubAvx2(weight, index, table, sub, begin, end, out);
      return;
    }
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) {
      internal::StageVotesSubNeon(weight, index, table, sub, begin, end, out);
      return;
    }
#endif
  }
  internal::StageVotesSubScalar(weight, index, table, sub, begin, end, out);
}

void StageVotesMaskedSub(Kind kind, const double* mask, const double* weight,
                         const uint32_t* index, const double* table,
                         const double* sub, size_t begin, size_t end,
                         double* out) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) {
      internal::StageVotesMaskedSubAvx2(mask, weight, index, table, sub, begin,
                                        end, out);
      return;
    }
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) {
      internal::StageVotesMaskedSubNeon(mask, weight, index, table, sub, begin,
                                        end, out);
      return;
    }
#endif
  }
  internal::StageVotesMaskedSubScalar(mask, weight, index, table, sub, begin,
                                      end, out);
}

void StageEdgeTerms(Kind kind, const float* conf, const uint32_t* group,
                    const double* net, size_t begin, size_t end, double* out) {
  const Isa isa = ActiveIsa();
  if (UseVector(kind, isa)) {
#if defined(KBT_KERNELS_HAVE_AVX2)
    if (isa == Isa::kAvx2) {
      internal::StageEdgeTermsAvx2(conf, group, net, begin, end, out);
      return;
    }
#endif
#if defined(KBT_KERNELS_HAVE_NEON)
    if (isa == Isa::kNeon) {
      internal::StageEdgeTermsNeon(conf, group, net, begin, end, out);
      return;
    }
#endif
  }
  internal::StageEdgeTermsScalar(conf, group, net, begin, end, out);
}

double ItemValuePass(Kind kind, uint32_t slot_begin, uint32_t slot_end,
                     const double* votes, size_t votes_offset,
                     const uint8_t* covered_mask, const uint32_t* slot_values,
                     int num_false, double* slot_value_prob,
                     uint8_t* slot_covered, double* item_unobserved,
                     EmScratch* scratch) {
  auto& values = scratch->values;
  auto& value_votes = scratch->value_votes;
  auto& log_terms = scratch->log_terms;
  auto& slot_vi = scratch->slot_vi;
  values.clear();
  value_votes.clear();
  // The vectorized kind remembers each slot's value index during the
  // grouping scan so the write-back below can be a gather; the reference
  // kind re-searches instead, keeping its program the verbatim pre-kernel
  // model code.
  const bool memo = kind == Kind::kVectorized;
  if (memo) slot_vi.resize(slot_end - slot_begin);
  bool covered = false;
  for (uint32_t s = slot_begin; s < slot_end; ++s) {
    covered |= covered_mask[s] != 0;
    const uint32_t v = slot_values[s];
    size_t vi = 0;
    for (; vi < values.size(); ++vi) {
      if (values[vi] == v) break;
    }
    if (vi == values.size()) {
      values.push_back(v);
      value_votes.push_back(0.0);
    }
    if (memo) slot_vi[s - slot_begin] = static_cast<uint32_t>(vi);
    value_votes[vi] += votes[s - votes_offset];
  }

  const int unobserved =
      std::max(0, num_false + 1 - static_cast<int>(values.size()));
  log_terms.assign(value_votes.begin(), value_votes.end());
  if (unobserved > 0) {
    log_terms.push_back(std::log(static_cast<double>(unobserved)));
  }
  const double log_z = LogSumExp(log_terms);
  if (item_unobserved != nullptr) {
    *item_unobserved = unobserved > 0 ? std::exp(-log_z) : 0.0;
  }

  double delta = 0.0;
  if (memo) {
    // Vectorized write-back: exp once per DISTINCT value (in place over
    // the vote accumulators), then gather per slot. Bit-identical to the
    // reference — exp(value_votes[vi] - log_z) is the same expression on
    // the same inputs — but the exp count drops from |slots| to |values|
    // and the per-slot linear value re-search disappears.
    for (size_t vi = 0; vi < value_votes.size(); ++vi) {
      value_votes[vi] = std::exp(value_votes[vi] - log_z);
    }
    for (uint32_t s = slot_begin; s < slot_end; ++s) {
      const double pv = value_votes[slot_vi[s - slot_begin]];
      delta = std::max(delta, std::fabs(pv - slot_value_prob[s]));
      slot_value_prob[s] = pv;
      if (slot_covered != nullptr) slot_covered[s] = covered ? 1 : 0;
    }
    return delta;
  }
  // Reference write-back: re-search the value list and exp per slot — the
  // naive, obviously-correct program the oracle is defined by.
  for (uint32_t s = slot_begin; s < slot_end; ++s) {
    const uint32_t v = slot_values[s];
    size_t vi = 0;
    for (; vi < values.size(); ++vi) {
      if (values[vi] == v) break;
    }
    const double pv = std::exp(value_votes[vi] - log_z);
    delta = std::max(delta, std::fabs(pv - slot_value_prob[s]));
    slot_value_prob[s] = pv;
    if (slot_covered != nullptr) slot_covered[s] = covered ? 1 : 0;
  }
  return delta;
}

uint32_t BuildValueIndex(uint32_t slot_begin, uint32_t slot_end,
                         const uint32_t* slot_values, uint32_t* slot_vi,
                         EmScratch* scratch) {
  auto& values = scratch->values;
  values.clear();
  for (uint32_t s = slot_begin; s < slot_end; ++s) {
    const uint32_t v = slot_values[s];
    size_t vi = 0;
    for (; vi < values.size(); ++vi) {
      if (values[vi] == v) break;
    }
    if (vi == values.size()) values.push_back(v);
    slot_vi[s] = static_cast<uint32_t>(vi);
  }
  return static_cast<uint32_t>(values.size());
}

double ItemValuePassIndexed(uint32_t slot_begin, uint32_t slot_end,
                            const double* votes, size_t votes_offset,
                            const uint8_t* covered_mask,
                            const uint32_t* slot_vi, uint32_t num_values,
                            int num_false, double* slot_value_prob,
                            uint8_t* slot_covered, double* item_unobserved,
                            EmScratch* scratch) {
  auto& value_votes = scratch->value_votes;
  auto& log_terms = scratch->log_terms;
  value_votes.assign(num_values, 0.0);
  bool covered = false;
  // Same per-value accumulation order (slots ascending) as the grouping
  // scan of ItemValuePass, so the sums carry identical rounding.
  for (uint32_t s = slot_begin; s < slot_end; ++s) {
    covered |= covered_mask[s] != 0;
    value_votes[slot_vi[s]] += votes[s - votes_offset];
  }

  const int unobserved =
      std::max(0, num_false + 1 - static_cast<int>(num_values));
  log_terms.assign(value_votes.begin(), value_votes.end());
  if (unobserved > 0) {
    log_terms.push_back(std::log(static_cast<double>(unobserved)));
  }
  const double log_z = LogSumExp(log_terms);
  if (item_unobserved != nullptr) {
    *item_unobserved = unobserved > 0 ? std::exp(-log_z) : 0.0;
  }

  for (size_t vi = 0; vi < value_votes.size(); ++vi) {
    value_votes[vi] = std::exp(value_votes[vi] - log_z);
  }
  double delta = 0.0;
  for (uint32_t s = slot_begin; s < slot_end; ++s) {
    const double pv = value_votes[slot_vi[s]];
    delta = std::max(delta, std::fabs(pv - slot_value_prob[s]));
    slot_value_prob[s] = pv;
    if (slot_covered != nullptr) slot_covered[s] = covered ? 1 : 0;
  }
  return delta;
}

}  // namespace kbt::kernels
