// AVX2 lanes of the EM kernels. Compiled into every x86-64 build via function
// target attributes (no global -mavx2), selected at runtime by ActiveIsa().
//
// Bit-for-bit contract: the vector loop accumulates 4 lanes vertically —
// element k lands in lane k % 4, exactly the scalar reference's lane
// assignment — the scalar tail continues into the STORED lane array, and the
// final combine is the shared CombineLanes. Multiplies and adds are separate
// intrinsics on purpose: the deterministic contract forbids FMA contraction
// (the module also builds with -ffp-contract=off).
#include "kernels/em_kernels_impl.h"

#if defined(KBT_KERNELS_HAVE_AVX2)

#include <immintrin.h>

#if defined(__GNUC__) && !defined(__clang__)
// GCC's unmasked gather intrinsics seed the merge operand with
// _mm256_undefined_pd(), which trips -Wmaybe-uninitialized (GCC PR 105593).
// The merge value is fully overwritten (all-ones mask), so the warning is a
// false positive.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace kbt::kernels::internal {

namespace {

#define KBT_AVX2 __attribute__((target("avx2")))

KBT_AVX2 inline __m128i LoadIdx4(const uint32_t* idx) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
}

}  // namespace

KBT_AVX2 Tally TallyIndexedAvx2(const uint32_t* idx, size_t n, const double* w,
                                const double* p) {
  __m256d num = _mm256_setzero_pd();
  __m256d den = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    const __m128i vi = LoadIdx4(idx + k);
    const __m256d vw = _mm256_i32gather_pd(w, vi, 8);
    const __m256d vp = _mm256_i32gather_pd(p, vi, 8);
    num = _mm256_add_pd(num, _mm256_mul_pd(vw, vp));
    den = _mm256_add_pd(den, vw);
  }
  alignas(32) double num_lanes[kTallyLanes];
  alignas(32) double den_lanes[kTallyLanes];
  _mm256_store_pd(num_lanes, num);
  _mm256_store_pd(den_lanes, den);
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t s = idx[k];
    num_lanes[j] += w[s] * p[s];
    den_lanes[j] += w[s];
  }
  return Tally{CombineLanes(num_lanes), CombineLanes(den_lanes)};
}

KBT_AVX2 Tally TallyMapAvx2(const uint32_t* idx, size_t n, const double* c,
                            const double* p) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d num = _mm256_setzero_pd();
  __m256d den = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    const __m128i vi = LoadIdx4(idx + k);
    const __m256d vc = _mm256_i32gather_pd(c, vi, 8);
    const __m256d vp = _mm256_i32gather_pd(p, vi, 8);
    const __m256d m =
        _mm256_and_pd(_mm256_cmp_pd(vc, half, _CMP_GT_OQ), one);
    num = _mm256_add_pd(num, _mm256_mul_pd(m, vp));
    den = _mm256_add_pd(den, m);
  }
  alignas(32) double num_lanes[kTallyLanes];
  alignas(32) double den_lanes[kTallyLanes];
  _mm256_store_pd(num_lanes, num);
  _mm256_store_pd(den_lanes, den);
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t s = idx[k];
    const double m = c[s] > 0.5 ? 1.0 : 0.0;
    num_lanes[j] += m * p[s];
    den_lanes[j] += m;
  }
  return Tally{CombineLanes(num_lanes), CombineLanes(den_lanes)};
}

KBT_AVX2 Tally TallyEdgesAvx2(const uint32_t* edges, size_t n,
                              const float* conf, const uint32_t* edge_slot,
                              const double* c) {
  __m256d num = _mm256_setzero_pd();
  __m256d den = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + kTallyLanes <= n; k += kTallyLanes) {
    const __m128i ve = LoadIdx4(edges + k);
    const __m256d vw = _mm256_cvtps_pd(_mm_i32gather_ps(conf, ve, 4));
    const __m128i vs = _mm_i32gather_epi32(
        reinterpret_cast<const int*>(edge_slot), ve, 4);
    const __m256d vc = _mm256_i32gather_pd(c, vs, 8);
    num = _mm256_add_pd(num, _mm256_mul_pd(vw, vc));
    den = _mm256_add_pd(den, vw);
  }
  alignas(32) double num_lanes[kTallyLanes];
  alignas(32) double den_lanes[kTallyLanes];
  _mm256_store_pd(num_lanes, num);
  _mm256_store_pd(den_lanes, den);
  for (size_t j = 0; k < n; ++k, ++j) {
    const uint32_t e = edges[k];
    const double w = static_cast<double>(conf[e]);
    num_lanes[j] += w * c[edge_slot[e]];
    den_lanes[j] += w;
  }
  return Tally{CombineLanes(num_lanes), CombineLanes(den_lanes)};
}

KBT_AVX2 void StageVotesAvx2(const double* weight, const uint32_t* index,
                             const double* table, size_t begin, size_t end,
                             double* out) {
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i vi = LoadIdx4(index + i);
    const __m256d vt = _mm256_i32gather_pd(table, vi, 8);
    const __m256d vw = _mm256_loadu_pd(weight + i);
    _mm256_storeu_pd(out + (i - begin), _mm256_mul_pd(vw, vt));
  }
  for (; i < end; ++i) out[i - begin] = weight[i] * table[index[i]];
}

KBT_AVX2 void StageVotesMaskedAvx2(const double* mask, const double* weight,
                                   const uint32_t* index, const double* table,
                                   size_t begin, size_t end, double* out) {
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i vi = LoadIdx4(index + i);
    const __m256d vt = _mm256_i32gather_pd(table, vi, 8);
    const __m256d vm = _mm256_loadu_pd(mask + i);
    const __m256d vw = _mm256_loadu_pd(weight + i);
    _mm256_storeu_pd(out + (i - begin),
                     _mm256_mul_pd(_mm256_mul_pd(vm, vw), vt));
  }
  for (; i < end; ++i) {
    out[i - begin] = (mask[i] * weight[i]) * table[index[i]];
  }
}

KBT_AVX2 void StageVotesSubAvx2(const double* weight, const uint32_t* index,
                                const double* table, const double* sub,
                                size_t begin, size_t end, double* out) {
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i vi = LoadIdx4(index + i);
    const __m256d vt = _mm256_i32gather_pd(table, vi, 8);
    const __m256d vs = _mm256_loadu_pd(sub + i);
    const __m256d vw = _mm256_loadu_pd(weight + i);
    _mm256_storeu_pd(out + (i - begin),
                     _mm256_mul_pd(vw, _mm256_sub_pd(vt, vs)));
  }
  for (; i < end; ++i) {
    out[i - begin] = weight[i] * (table[index[i]] - sub[i]);
  }
}

KBT_AVX2 void StageVotesMaskedSubAvx2(const double* mask, const double* weight,
                                      const uint32_t* index,
                                      const double* table, const double* sub,
                                      size_t begin, size_t end, double* out) {
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i vi = LoadIdx4(index + i);
    const __m256d vt = _mm256_i32gather_pd(table, vi, 8);
    const __m256d vs = _mm256_loadu_pd(sub + i);
    const __m256d vm = _mm256_loadu_pd(mask + i);
    const __m256d vw = _mm256_loadu_pd(weight + i);
    _mm256_storeu_pd(out + (i - begin),
                     _mm256_mul_pd(_mm256_mul_pd(vm, vw),
                                   _mm256_sub_pd(vt, vs)));
  }
  for (; i < end; ++i) {
    out[i - begin] = (mask[i] * weight[i]) * (table[index[i]] - sub[i]);
  }
}

KBT_AVX2 void StageEdgeTermsAvx2(const float* conf, const uint32_t* group,
                                 const double* net, size_t begin, size_t end,
                                 double* out) {
  size_t e = begin;
  for (; e + 4 <= end; e += 4) {
    const __m256d vw = _mm256_cvtps_pd(_mm_loadu_ps(conf + e));
    const __m128i vg = LoadIdx4(group + e);
    const __m256d vn = _mm256_i32gather_pd(net, vg, 8);
    _mm256_storeu_pd(out + (e - begin), _mm256_mul_pd(vw, vn));
  }
  for (; e < end; ++e) {
    out[e - begin] = static_cast<double>(conf[e]) * net[group[e]];
  }
}

}  // namespace kbt::kernels::internal

#endif  // KBT_KERNELS_HAVE_AVX2
