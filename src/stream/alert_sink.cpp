#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "kbt/stream.h"

namespace kbt::stream {

namespace {

/// Fires `rule` for every id whose trust dropped enough between the two
/// generations. Walks the AFTER generation's dense id space (it covers the
/// before space too — id spaces only grow under appends) and measures the
/// drop for ids scored on both sides.
template <typename LookupFn>
void EvaluateRule(const AlertRule& rule, size_t num_ids, LookupFn&& lookup,
                  const query::Snapshot& before, const query::Snapshot& after,
                  double now, std::vector<Alert>* out) {
  const uint32_t first = rule.id.has_value() ? *rule.id : 0;
  const uint32_t last = rule.id.has_value()
                            ? *rule.id + 1
                            : static_cast<uint32_t>(num_ids);
  for (uint32_t id = first; id < last && id < num_ids; ++id) {
    const std::optional<query::SourceTrust> was = lookup(before, id);
    const std::optional<query::SourceTrust> is = lookup(after, id);
    if (!was.has_value() || !is.has_value()) continue;
    const double drop = was->kbt - is->kbt;
    if (drop <= 0.0) continue;
    if (drop < rule.min_drop) continue;
    if (rule.min_drop_fraction > 0.0 &&
        !(was->kbt > 0.0 && drop >= rule.min_drop_fraction * was->kbt)) {
      continue;
    }
    Alert alert;
    alert.rule = rule.name;
    alert.target = rule.target;
    alert.id = id;
    alert.before_kbt = was->kbt;
    alert.after_kbt = is->kbt;
    alert.drop = drop;
    alert.before_sequence = before.info().sequence;
    alert.after_sequence = after.info().sequence;
    alert.time = now;
    out->push_back(std::move(alert));
  }
}

}  // namespace

void AlertSink::AddRule(AlertRule rule) { rules_.push_back(std::move(rule)); }

std::vector<Alert> AlertSink::Evaluate(const query::Snapshot& before,
                                       const query::Snapshot& after,
                                       double now) const {
  std::vector<Alert> fired;
  for (const AlertRule& rule : rules_) {
    if (rule.target == AlertTarget::kWebsites) {
      EvaluateRule(
          rule, after.num_websites(),
          [](const query::Snapshot& snapshot, uint32_t id) {
            return snapshot.WebsiteTrust(id);
          },
          before, after, now, &fired);
    } else {
      EvaluateRule(
          rule, after.num_sources(),
          [](const query::Snapshot& snapshot, uint32_t id) {
            return snapshot.SourceTrust(id);
          },
          before, after, now, &fired);
    }
  }
  return fired;
}

}  // namespace kbt::stream
