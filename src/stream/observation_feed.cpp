#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/dataset_io.h"
#include "kbt/stream.h"

namespace kbt::stream {

// ---------------------------------------------------------------------------
// QueueFeed
// ---------------------------------------------------------------------------

void QueueFeed::Push(TimedObservation observation) {
  MutexLock lock(mutex_);
  pending_.push_back(std::move(observation));
}

void QueueFeed::PushBatch(std::vector<TimedObservation> batch) {
  MutexLock lock(mutex_);
  if (pending_.empty()) {
    pending_ = std::move(batch);
    return;
  }
  pending_.insert(pending_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
}

size_t QueueFeed::pending() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

StatusOr<std::vector<TimedObservation>> QueueFeed::Poll() {
  std::vector<TimedObservation> drained;
  MutexLock lock(mutex_);
  drained.swap(pending_);
  return drained;
}

// ---------------------------------------------------------------------------
// TsvTailFeed
// ---------------------------------------------------------------------------

TsvTailFeed::TsvTailFeed(std::string path, double default_timestamp)
    : path_(std::move(path)), default_timestamp_(default_timestamp) {}

StatusOr<std::vector<TimedObservation>> TsvTailFeed::Poll() {
  std::vector<TimedObservation> batch;
  std::ifstream in(path_, std::ios::binary);
  // A missing file is "nothing written yet", not an error: tailing starts
  // before the writer in every bootstrap.
  if (!in) return batch;
  in.seekg(static_cast<std::streamoff>(bytes_consumed_));
  if (!in) return batch;  // File shrank/rotated below our offset: wait.
  std::string chunk((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes_consumed_ += chunk.size();
  partial_ += chunk;

  // Parse every COMPLETE line; the trailing partial (no '\n' yet — a
  // writer mid-append) carries over untouched to the next Poll.
  size_t start = 0;
  while (true) {
    const size_t newline = partial_.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = partial_.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag != "obs") continue;  // meta/nfalse/truth: dataset bookkeeping.
    std::string rest;
    std::getline(fields, rest);
    StatusOr<io::ParsedObservation> parsed =
        io::ParseObservationFields(rest);
    if (!parsed.ok()) {
      return Status::InvalidArgument("TsvTailFeed(" + path_ +
                                     "): " + parsed.status().message());
    }
    TimedObservation timed;
    timed.observation = parsed->observation;
    timed.timestamp =
        parsed->has_timestamp ? parsed->timestamp : default_timestamp_;
    batch.push_back(timed);
  }
  partial_.erase(0, start);
  return batch;
}

}  // namespace kbt::stream
