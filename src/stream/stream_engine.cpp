/// StreamEngine lives in kbt_api (like runners.cpp): it drives Pipeline and
/// ShardedPipeline, which sit above the kbt_stream module's feeds/alerts in
/// the layer graph — compiling it here keeps the module DAG acyclic.

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "kbt/obs.h"
#include "kbt/stream.h"

namespace kbt::stream {

namespace {

Status ValidateCommon(const void* pipeline,
                      const std::shared_ptr<ObservationFeed>& feed) {
  if (pipeline == nullptr) {
    return Status::InvalidArgument("StreamEngine requires a pipeline");
  }
  if (feed == nullptr) {
    return Status::InvalidArgument("StreamEngine requires a feed");
  }
  return Status::OK();
}

/// Per-phase tick timings, registered once. Engines share these
/// process-wide histograms (an engine-per-session breakdown would tie
/// cardinality to session churn; see docs/OBSERVABILITY.md).
struct TickMetrics {
  obs::Histogram* poll;
  obs::Histogram* decay;
  obs::Histogram* append;
  obs::Histogram* run;
  obs::Histogram* publish;
  obs::Histogram* alert;
  /// Tick entry (feed poll) -> snapshot visible to readers.
  obs::Histogram* feed_to_queryable;
};

const TickMetrics& Metrics() {
  static const TickMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    const auto phase = [&registry](const char* name) {
      return registry.GetHistogram("kbt_stream_phase_seconds",
                                   {{"phase", name}});
    };
    TickMetrics m;
    m.poll = phase("poll");
    m.decay = phase("decay");
    m.append = phase("append");
    m.run = phase("run");
    m.publish = phase("publish");
    m.alert = phase("alert");
    m.feed_to_queryable =
        registry.GetHistogram("kbt_stream_feed_to_queryable_seconds");
    return m;
  }();
  return metrics;
}

}  // namespace

StreamEngine::StreamEngine(api::Pipeline* pipeline,
                           api::ShardedPipeline* sharded,
                           std::shared_ptr<ObservationFeed> feed,
                           StreamOptions options)
    : pipeline_(pipeline),
      sharded_(sharded),
      feed_(std::move(feed)),
      options_(std::move(options)) {
  for (const AlertRule& rule : options_.alert_rules) {
    alerts_.AddRule(rule);
  }
}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    api::Pipeline* pipeline, std::shared_ptr<ObservationFeed> feed,
    StreamOptions options) {
  KBT_RETURN_IF_ERROR(ValidateCommon(pipeline, feed));
  std::unique_ptr<StreamEngine> engine(new StreamEngine(
      pipeline, nullptr, std::move(feed), std::move(options)));
  engine->pipeline_->snapshot_registry()->SetRetention(
      engine->options_.history_capacity);
  // Seed the decay timeline from the dataset's own timestamps when it
  // carries them; an untimestamped seed decays as maximally old (time 0).
  const extract::RawDataset& data = pipeline->dataset();
  if (data.observation_timestamps.size() == data.observations.size()) {
    engine->timeline_ = data.observation_timestamps;
  }
  engine->timeline_.resize(data.observations.size(), 0.0);
  return engine;
}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    api::ShardedPipeline* pipeline, std::shared_ptr<ObservationFeed> feed,
    StreamOptions options) {
  KBT_RETURN_IF_ERROR(ValidateCommon(pipeline, feed));
  if (options.decay_half_life > 0.0) {
    return Status::InvalidArgument(
        "time-decay is not supported on sharded backends yet: "
        "per-shard weight scatter is future work — stream sharded "
        "sessions with decay_half_life <= 0");
  }
  std::unique_ptr<StreamEngine> engine(new StreamEngine(
      nullptr, pipeline, std::move(feed), std::move(options)));
  engine->sharded_->snapshot_registry()->SetRetention(
      engine->options_.history_capacity);
  return engine;
}

StatusOr<TickResult> StreamEngine::Tick(double now) {
  KBT_TRACE_SPAN("stream.tick");
  tick_start_ns_ = obs::MetricsEnabled() ? obs::MonotonicNanos() : 0;
  StatusOr<std::vector<TimedObservation>> polled = [this] {
    obs::ScopedTimer timer(Metrics().poll);
    KBT_TRACE_SPAN("stream.poll");
    return feed_->Poll();
  }();
  if (!polled.ok()) return polled.status();
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (polled->empty()) {
    empty_ticks_.fetch_add(1, std::memory_order_relaxed);
    return TickResult{};
  }
  return pipeline_ != nullptr ? TickPipeline(now, std::move(*polled))
                              : TickSharded(now, std::move(*polled));
}

StatusOr<TickResult> StreamEngine::TickPipeline(
    double now, std::vector<TimedObservation> batch) {
  std::vector<extract::RawObservation> observations;
  observations.reserve(batch.size());
  for (const TimedObservation& timed : batch) {
    observations.push_back(timed.observation);
  }
  {
    obs::ScopedTimer timer(Metrics().append);
    KBT_TRACE_SPAN("stream.append");
    // Resync before extending: if the pipeline was appended to outside the
    // engine, the unseen observations get time 0 (maximally old) rather
    // than silently shifting every later timestamp onto the wrong
    // observation.
    timeline_.resize(pipeline_->dataset().size(), 0.0);
    KBT_RETURN_IF_ERROR(pipeline_->AppendObservations(observations));
    for (const TimedObservation& timed : batch) {
      timeline_.push_back(timed.timestamp);
    }
  }

  if (options_.decay_half_life > 0.0) {
    obs::ScopedTimer timer(Metrics().decay);
    KBT_TRACE_SPAN("stream.decay");
    std::vector<float> weights(timeline_.size());
    for (size_t i = 0; i < timeline_.size(); ++i) {
      const double age = now - timeline_[i];
      // Future-dated observations clamp to full weight.
      weights[i] = age <= 0.0
                       ? 1.0f
                       : static_cast<float>(
                             std::exp2(-age / options_.decay_half_life));
    }
    KBT_RETURN_IF_ERROR(
        pipeline_->SetObservationWeights(std::move(weights)));
  }
  // With decay off nothing is set: AppendObservations already cleared any
  // stale weights, so the run below IS the batch path, bit for bit.

  StatusOr<api::TrustReport> report = [this] {
    obs::ScopedTimer timer(Metrics().run);
    KBT_TRACE_SPAN("stream.run");
    return (options_.warm_start && last_report_.has_value())
               ? pipeline_->RunFrom(*last_report_)
               : pipeline_->Run();
  }();
  // A failed run keeps the appended observations (they re-enter inference
  // on the next tick) and publishes nothing.
  if (!report.ok()) return report.status();
  last_report_ = std::move(*report);

  TickResult result;
  result.observations_ingested = batch.size();
  result.published = true;
  {
    obs::ScopedTimer timer(Metrics().publish);
    KBT_TRACE_SPAN("stream.publish");
    result.snapshot = pipeline_->PublishSnapshot(*last_report_, now);
  }
  result.sequence = result.snapshot->info().sequence;
  if (tick_start_ns_ != 0) {
    // The snapshot is now reader-visible: the feed-to-queryable latency.
    Metrics().feed_to_queryable->Record(
        static_cast<double>(obs::MonotonicNanos() - tick_start_ns_) * 1e-9);
  }
  FinishTick(now, &result);
  return result;
}

StatusOr<TickResult> StreamEngine::TickSharded(
    double now, std::vector<TimedObservation> batch) {
  std::vector<extract::RawObservation> observations;
  observations.reserve(batch.size());
  for (const TimedObservation& timed : batch) {
    observations.push_back(timed.observation);
  }
  {
    obs::ScopedTimer timer(Metrics().append);
    KBT_TRACE_SPAN("stream.append");
    KBT_RETURN_IF_ERROR(sharded_->AppendObservations(observations));
  }

  StatusOr<api::ShardedTrustReport> report = [this] {
    obs::ScopedTimer timer(Metrics().run);
    KBT_TRACE_SPAN("stream.run");
    return (options_.warm_start && last_sharded_.has_value())
               ? sharded_->RunFrom(*last_sharded_)
               : sharded_->Run();
  }();
  if (!report.ok()) return report.status();
  last_sharded_ = std::move(*report);

  TickResult result;
  result.observations_ingested = batch.size();
  result.published = true;
  {
    obs::ScopedTimer timer(Metrics().publish);
    KBT_TRACE_SPAN("stream.publish");
    result.snapshot = sharded_->PublishSnapshot(*last_sharded_, now);
  }
  result.sequence = result.snapshot->info().sequence;
  if (tick_start_ns_ != 0) {
    Metrics().feed_to_queryable->Record(
        static_cast<double>(obs::MonotonicNanos() - tick_start_ns_) * 1e-9);
  }
  FinishTick(now, &result);
  return result;
}

void StreamEngine::FinishTick(double now, TickResult* result) {
  obs::ScopedTimer timer(Metrics().alert);
  KBT_TRACE_SPAN("stream.alert");
  observations_ingested_.fetch_add(result->observations_ingested,
                                   std::memory_order_relaxed);
  generations_published_.fetch_add(1, std::memory_order_relaxed);
  if (previous_snapshot_ != nullptr) {
    result->diff = query::DiffSnapshots(*previous_snapshot_, *result->snapshot,
                                        options_.diff_top_k);
    // Alerts walk the FULL snapshots, independent of the diff's top-k.
    result->alerts =
        alerts_.Evaluate(*previous_snapshot_, *result->snapshot, now);
    alerts_fired_.fetch_add(result->alerts.size(),
                            std::memory_order_relaxed);
    if (options_.alert_callback) {
      for (const Alert& alert : result->alerts) {
        options_.alert_callback(alert);
      }
    }
  }
  previous_snapshot_ = result->snapshot;
}

StreamStats StreamEngine::stats() const {
  StreamStats stats;
  stats.ticks = ticks_.load(std::memory_order_relaxed);
  stats.empty_ticks = empty_ticks_.load(std::memory_order_relaxed);
  stats.observations_ingested =
      observations_ingested_.load(std::memory_order_relaxed);
  stats.generations_published =
      generations_published_.load(std::memory_order_relaxed);
  stats.alerts_fired = alerts_fired_.load(std::memory_order_relaxed);
  return stats;
}

std::shared_ptr<query::SnapshotRegistry> StreamEngine::snapshot_registry()
    const {
  return pipeline_ != nullptr ? pipeline_->snapshot_registry()
                              : sharded_->snapshot_registry();
}

}  // namespace kbt::stream
