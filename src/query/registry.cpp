#include <memory>
#include <utility>

#include "kbt/query.h"

namespace kbt::query {

std::shared_ptr<const Snapshot> SnapshotRegistry::Publish(Snapshot snapshot) {
  // The allocation and the (potentially large) move happen before the
  // lock; the critical section is a sequence stamp and two word stores.
  auto published = std::make_shared<Snapshot>(std::move(snapshot));
  MutexLock lock(slot_mutex_);
  const uint64_t sequence = version_.load(std::memory_order_relaxed) + 1;
  published->info_.sequence = sequence;
  current_ = published;
  // Published-then-announced: a reader that observes version() == N will
  // find a snapshot with sequence >= N behind the slot lock (the mutex
  // carries the happens-before for the pointee).
  version_.store(sequence, std::memory_order_release);
  return published;
}

std::shared_ptr<const Snapshot> SnapshotRegistry::Current() const {
  MutexLock lock(slot_mutex_);
  return current_;
}

bool SnapshotRegistry::TryCurrent(
    std::shared_ptr<const Snapshot>* out) const {
  if (!slot_mutex_.TryLock()) return false;
  *out = current_;
  slot_mutex_.Unlock();
  return true;
}

const Snapshot* SnapshotReader::view() {
  Refresh();
  return cached_.get();
}

std::shared_ptr<const Snapshot> SnapshotReader::Acquire() {
  Refresh();
  return cached_;
}

void SnapshotReader::Refresh() {
  if (registry_ == nullptr) return;
  // Steady state: one acquire load of a word that only changes on publish.
  const uint64_t version = registry_->version();
  const uint64_t cached = cached_ ? cached_->info().sequence : 0;
  if (version == cached) return;
  if (cached_ == nullptr) {
    // First attach: take the slot lock outright (a pointer copy). With a
    // try here, a reader losing the race against a publisher — or a
    // sibling reader's first refresh — would report "nothing published"
    // to a caller that just watched a publish complete.
    cached_ = registry_->Current();
    return;
  }
  // A publish happened: adopt the new snapshot — but never by waiting. A
  // failed try means the slot is held for a pointer swap right now; the
  // pinned previous snapshot keeps serving and the next call retries.
  std::shared_ptr<const Snapshot> fresh;
  if (registry_->TryCurrent(&fresh)) cached_ = std::move(fresh);
}

}  // namespace kbt::query
