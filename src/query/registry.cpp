#include <memory>
#include <utility>
#include <vector>

#include "kbt/obs.h"
#include "kbt/query.h"

namespace kbt::query {

namespace {

/// RCU visibility metrics, process-wide aggregates (registries are
/// per-session; per-registry labels would tie cardinality to session
/// churn). The version/retained gauges track the most recent publisher.
struct RegistryMetrics {
  obs::Counter* publishes;
  obs::Gauge* version;
  obs::Gauge* retained;
  obs::Counter* reader_refreshes;
  obs::Counter* reader_contention;
};

const RegistryMetrics& Metrics() {
  static const RegistryMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    RegistryMetrics m;
    m.publishes = registry.GetCounter("kbt_query_publish_total");
    m.version = registry.GetGauge("kbt_query_registry_version");
    m.retained = registry.GetGauge("kbt_query_registry_retained");
    m.reader_refreshes = registry.GetCounter("kbt_query_reader_refresh_total");
    m.reader_contention =
        registry.GetCounter("kbt_query_reader_contention_total");
    return m;
  }();
  return metrics;
}

}  // namespace

std::shared_ptr<const Snapshot> SnapshotRegistry::Publish(Snapshot snapshot) {
  return Publish(std::move(snapshot), 0.0);
}

std::shared_ptr<const Snapshot> SnapshotRegistry::Publish(
    Snapshot snapshot, double publish_time) {
  // The allocation and the (potentially large) move happen before the
  // lock; the critical section is a sequence stamp and a few word stores
  // (the ring rotation is pointer moves, never Snapshot copies).
  auto published = std::make_shared<Snapshot>(std::move(snapshot));
  published->info_.publish_time = publish_time;
  MutexLock lock(slot_mutex_);
  const uint64_t sequence = version_.load(std::memory_order_relaxed) + 1;
  published->info_.sequence = sequence;
  if (retention_ > 0 && current_ != nullptr) {
    history_.push_back(std::move(current_));
    if (history_.size() > retention_ - 1) {
      history_.erase(history_.begin(),
                     history_.end() - (retention_ - 1));
    }
  }
  current_ = published;
  // Published-then-announced: a reader that observes version() == N will
  // find a snapshot with sequence >= N behind the slot lock (the mutex
  // carries the happens-before for the pointee).
  version_.store(sequence, std::memory_order_release);
  KBT_OBS_INC(Metrics().publishes);
  KBT_OBS_GAUGE_SET(Metrics().version, static_cast<double>(sequence));
  KBT_OBS_GAUGE_SET(
      Metrics().retained,
      static_cast<double>(history_.size() + (current_ != nullptr ? 1 : 0)));
  return published;
}

void SnapshotRegistry::SetRetention(size_t capacity) {
  MutexLock lock(slot_mutex_);
  retention_ = capacity;
  const size_t keep = capacity > 0 ? capacity - 1 : 0;
  if (history_.size() > keep) {
    history_.erase(history_.begin(), history_.end() - keep);
  }
}

std::vector<SnapshotInfo> SnapshotRegistry::History() const {
  MutexLock lock(slot_mutex_);
  std::vector<SnapshotInfo> infos;
  infos.reserve(history_.size() + (current_ != nullptr ? 1 : 0));
  for (const auto& snapshot : history_) infos.push_back(snapshot->info());
  if (current_ != nullptr) infos.push_back(current_->info());
  return infos;
}

std::shared_ptr<const Snapshot> SnapshotRegistry::AsOf(double t) const {
  MutexLock lock(slot_mutex_);
  if (current_ != nullptr && current_->info().publish_time <= t) {
    return current_;
  }
  // Newest retained generation first (the ring is ordered oldest first and
  // publish times are expected monotone per registry).
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if ((*it)->info().publish_time <= t) return *it;
  }
  return nullptr;
}

std::shared_ptr<const Snapshot> SnapshotRegistry::Current() const {
  MutexLock lock(slot_mutex_);
  return current_;
}

bool SnapshotRegistry::TryCurrent(
    std::shared_ptr<const Snapshot>* out) const {
  if (!slot_mutex_.TryLock()) return false;
  *out = current_;
  slot_mutex_.Unlock();
  return true;
}

const Snapshot* SnapshotReader::view() {
  Refresh();
  return cached_.get();
}

std::shared_ptr<const Snapshot> SnapshotReader::Acquire() {
  Refresh();
  return cached_;
}

void SnapshotReader::Refresh() {
  if (registry_ == nullptr) return;
  // Steady state: one acquire load of a word that only changes on publish.
  const uint64_t version = registry_->version();
  const uint64_t cached = cached_ ? cached_->info().sequence : 0;
  if (version == cached) return;
  if (cached_ == nullptr) {
    // First attach: take the slot lock outright (a pointer copy). With a
    // try here, a reader losing the race against a publisher — or a
    // sibling reader's first refresh — would report "nothing published"
    // to a caller that just watched a publish complete.
    cached_ = registry_->Current();
    KBT_OBS_INC(Metrics().reader_refreshes);
    return;
  }
  // A publish happened: adopt the new snapshot — but never by waiting. A
  // failed try means the slot is held for a pointer swap right now; the
  // pinned previous snapshot keeps serving and the next call retries.
  // Metrics sit off the steady-state path above (version == cached
  // returns before any counter): only actual adoptions and contention
  // events pay the fetch_add.
  std::shared_ptr<const Snapshot> fresh;
  if (registry_->TryCurrent(&fresh)) {
    cached_ = std::move(fresh);
    KBT_OBS_INC(Metrics().reader_refreshes);
  } else {
    KBT_OBS_INC(Metrics().reader_contention);
  }
}

}  // namespace kbt::query
