#include <algorithm>
#include <cmath>
#include <cstddef>

#include "kbt/query.h"

namespace kbt::query {

namespace {

/// Movers over one id-indexed score family: ids live in dense [0, n)
/// spaces on both sides, so the shared population is the common prefix and
/// the surplus on either side is churn.
void DiffScored(size_t before_count, size_t after_count,
                const std::function<std::optional<SourceTrust>(uint32_t)>&
                    before_at,
                const std::function<std::optional<SourceTrust>(uint32_t)>&
                    after_at,
                size_t top_k, size_t* added, size_t* removed,
                std::vector<SourceMove>* moves) {
  *added = after_count > before_count ? after_count - before_count : 0;
  *removed = before_count > after_count ? before_count - after_count : 0;
  const size_t common = std::min(before_count, after_count);
  moves->clear();
  moves->reserve(common);
  for (uint32_t id = 0; id < common; ++id) {
    const std::optional<SourceTrust> before = before_at(id);
    const std::optional<SourceTrust> after = after_at(id);
    if (!before || !after) continue;
    moves->push_back(SourceMove{id, before->kbt, after->kbt,
                                after->kbt - before->kbt});
  }
  const size_t keep = std::min(top_k, moves->size());
  std::partial_sort(moves->begin(),
                    moves->begin() + static_cast<ptrdiff_t>(keep),
                    moves->end(),
                    [](const SourceMove& a, const SourceMove& b) {
                      const double ma = std::abs(a.delta);
                      const double mb = std::abs(b.delta);
                      if (ma != mb) return ma > mb;
                      return a.id < b.id;
                    });
  moves->resize(keep);
}

}  // namespace

SnapshotDiff DiffSnapshots(const Snapshot& before, const Snapshot& after,
                           size_t top_k) {
  SnapshotDiff diff;
  diff.before_sequence = before.info().sequence;
  diff.after_sequence = after.info().sequence;

  DiffScored(
      before.num_sources(), after.num_sources(),
      [&before](uint32_t id) { return before.SourceTrust(id); },
      [&after](uint32_t id) { return after.SourceTrust(id); }, top_k,
      &diff.sources_added, &diff.sources_removed, &diff.top_source_moves);
  DiffScored(
      before.num_websites(), after.num_websites(),
      [&before](uint32_t id) { return before.WebsiteTrust(id); },
      [&after](uint32_t id) { return after.WebsiteTrust(id); }, top_k,
      &diff.websites_added, &diff.websites_removed,
      &diff.top_website_moves);

  // Triple churn: walk `after`'s sealed triple array sequentially (friend
  // access — no copy, no rank-order indirection) probing `before`'s hash
  // index. O(before + after) expected; the common count is derived once.
  size_t common = 0;
  for (const TripleTruth& triple : after.triples_) {
    if (before.TripleTruth(triple.item, triple.value)) ++common;
  }
  diff.triples_added = after.num_triples() - common;
  diff.triples_removed = before.num_triples() - common;
  return diff;
}

}  // namespace kbt::query
