#include <algorithm>
#include <queue>
#include <set>
#include <utility>

#include "extract/dataset_partition.h"
#include "kbt/shard.h"

namespace kbt::query {

namespace {

/// The cross-shard triple rule: does `a` (from shard_a) beat `b` (from
/// shard_b)? Highest probability, then covered over uncovered, then the
/// lowest shard index. Used for point merges; the top-k heap encodes the
/// same order.
bool BeatsTriple(const TripleTruth& a, uint32_t shard_a, const TripleTruth& b,
                 uint32_t shard_b) {
  if (a.probability != b.probability) return a.probability > b.probability;
  if (a.covered != b.covered) return a.covered;
  return shard_a < shard_b;
}

/// A cursor into one shard's pre-sorted top-k list. The heap holds one per
/// non-exhausted shard; Cmp orders cursors by their current element.
struct Cursor {
  uint32_t shard = 0;
  size_t pos = 0;
};

/// Pops merged elements from per-shard sorted lists through a binary heap:
/// better(a, shard_a, b, shard_b) says element a ranks strictly before b.
/// Calls emit(element, shard) in merged order until every list is
/// exhausted or emit returns false.
template <typename T, typename Better, typename Emit>
void HeapMerge(const std::vector<std::vector<T>>& lists, Better better,
               Emit emit) {
  const auto cursor_after = [&](const Cursor& a, const Cursor& b) {
    // priority_queue keeps the GREATEST element on top under "less than",
    // so "a after b" puts the best-ranked cursor on top.
    return better(lists[b.shard][b.pos], b.shard, lists[a.shard][a.pos],
                  a.shard);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_after)>
      heap(cursor_after);
  for (uint32_t s = 0; s < lists.size(); ++s) {
    if (!lists[s].empty()) heap.push(Cursor{s, 0});
  }
  while (!heap.empty()) {
    const Cursor top = heap.top();
    heap.pop();
    if (!emit(lists[top.shard][top.pos], top.shard)) return;
    if (top.pos + 1 < lists[top.shard].size()) {
      heap.push(Cursor{top.shard, top.pos + 1});
    }
  }
}

bool BeatsSourceTrust(const SourceTrust& a, uint32_t shard_a,
                      const SourceTrust& b, uint32_t shard_b) {
  if (a.kbt != b.kbt) return a.kbt > b.kbt;
  if (shard_a != shard_b) return shard_a < shard_b;
  return a.id < b.id;
}

/// Website merge order: ids are globally unique (ownership-filtered), so
/// the per-shard order (kbt desc, id asc) extends across shards directly.
bool BeatsWebsite(const SourceTrust& a, uint32_t /*shard_a*/,
                  const SourceTrust& b, uint32_t /*shard_b*/) {
  if (a.kbt != b.kbt) return a.kbt > b.kbt;
  return a.id < b.id;
}

/// Top-k heap order for triples: probability desc, then item/value asc
/// (the per-shard order), then the point-merge tie-breaks so the first
/// pop of a duplicated key is exactly its cross-shard winner.
bool BeatsTripleRanked(const TripleTruth& a, uint32_t shard_a,
                       const TripleTruth& b, uint32_t shard_b) {
  if (a.probability != b.probability) return a.probability > b.probability;
  if (a.item != b.item) return a.item < b.item;
  if (a.value != b.value) return a.value < b.value;
  if (a.covered != b.covered) return a.covered;
  return shard_a < shard_b;
}

bool BeatsMove(const SourceMove& a, uint32_t shard_a, const SourceMove& b,
               uint32_t shard_b) {
  const double abs_a = a.delta < 0 ? -a.delta : a.delta;
  const double abs_b = b.delta < 0 ? -b.delta : b.delta;
  if (abs_a != abs_b) return abs_a > abs_b;
  if (a.id != b.id) return a.id < b.id;
  return shard_a < shard_b;
}

}  // namespace

uint32_t ShardOfWebsite(uint32_t website, uint32_t num_shards,
                        uint64_t salt) {
  if (num_shards == 0) return 0;
  return extract::ShardOfWebsite(website, num_shards, salt);
}

MergedSnapshot::MergedSnapshot(
    std::vector<std::shared_ptr<const query::Snapshot>> shards, uint64_t salt)
    : shards_(std::move(shards)), salt_(salt) {}

const Snapshot* MergedSnapshot::shard(uint32_t shard_index) const {
  if (shard_index >= shards_.size()) return nullptr;
  return shards_[shard_index].get();
}

size_t MergedSnapshot::TotalTriples() const {
  size_t total = 0;
  for (const auto& snapshot : shards_) {
    if (snapshot != nullptr) total += snapshot->num_triples();
  }
  return total;
}

std::optional<SourceTrust> MergedSnapshot::WebsiteTrust(
    uint32_t website) const {
  if (shards_.empty()) return std::nullopt;
  const uint32_t owner = ShardOfWebsite(
      website, static_cast<uint32_t>(shards_.size()), salt_);
  if (shards_[owner] == nullptr) return std::nullopt;
  return shards_[owner]->WebsiteTrust(website);
}

std::optional<SourceTrust> MergedSnapshot::ShardSourceTrust(
    uint32_t shard_index, uint32_t source_group) const {
  const Snapshot* snapshot = shard(shard_index);
  if (snapshot == nullptr) return std::nullopt;
  return snapshot->SourceTrust(source_group);
}

std::optional<TripleTruth> MergedSnapshot::TripleTruth(uint64_t item,
                                                       uint32_t value) const {
  std::optional<query::TripleTruth> best;
  uint32_t best_shard = 0;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] == nullptr) continue;
    const auto candidate = shards_[s]->TripleTruth(item, value);
    if (!candidate) continue;
    if (!best || BeatsTriple(*candidate, s, *best, best_shard)) {
      best = candidate;
      best_shard = s;
    }
  }
  return best;
}

std::vector<TripleTruth> MergedSnapshot::ItemValues(uint64_t item) const {
  // Gather every shard's candidates, then keep one record per value under
  // the cross-shard rule. Shard index rides along for the tie-break.
  std::vector<std::pair<query::TripleTruth, uint32_t>> candidates;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] == nullptr) continue;
    for (query::TripleTruth& truth : shards_[s]->ItemValues(item)) {
      candidates.emplace_back(truth, s);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first.value != b.first.value) {
                return a.first.value < b.first.value;
              }
              return BeatsTriple(a.first, a.second, b.first, b.second);
            });
  std::vector<query::TripleTruth> merged;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i == 0 || candidates[i].first.value != candidates[i - 1].first.value) {
      merged.push_back(candidates[i].first);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const query::TripleTruth& a, const query::TripleTruth& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.value < b.value;
            });
  return merged;
}

std::vector<SourceTrust> MergedSnapshot::TopKWebsites(
    size_t k, const SourceFilter& filter) const {
  // Each shard contributes only websites it OWNS — the alignment rows
  // other shards carry (zero evidence, zero kbt) must never duplicate an
  // id into the merged ranking. The composed predicate runs inside the
  // shard's own filtered top-k scan, so fetching k per shard is exact:
  // any merged top-k entry is within its owner shard's top k.
  if (k == 0) return {};
  const uint32_t num_shards = static_cast<uint32_t>(shards_.size());
  std::vector<std::vector<SourceTrust>> lists(shards_.size());
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (shards_[s] == nullptr) continue;
    SourceFilter shard_filter;
    shard_filter.min_evidence = filter.min_evidence;
    shard_filter.predicate = [this, s, num_shards,
                              &filter](const SourceTrust& candidate) {
      if (ShardOfWebsite(candidate.id, num_shards, salt_) != s) return false;
      return !filter.predicate || filter.predicate(candidate);
    };
    lists[s] = shards_[s]->TopKWebsites(k, shard_filter);
  }
  std::vector<SourceTrust> merged;
  merged.reserve(k);
  HeapMerge(lists, BeatsWebsite,
            [&](const SourceTrust& website, uint32_t /*shard*/) {
              merged.push_back(website);
              return merged.size() < k;
            });
  return merged;
}

std::vector<MergedSourceTrust> MergedSnapshot::TopKSources(
    size_t k, const SourceFilter& filter) const {
  if (k == 0) return {};
  std::vector<std::vector<SourceTrust>> lists(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] == nullptr) continue;
    lists[s] = shards_[s]->TopKSources(k, filter);
  }
  std::vector<MergedSourceTrust> merged;
  merged.reserve(k);
  HeapMerge(lists, BeatsSourceTrust,
            [&](const SourceTrust& source, uint32_t shard_index) {
              merged.push_back(MergedSourceTrust{shard_index, source});
              return merged.size() < k;
            });
  return merged;
}

std::vector<TripleTruth> MergedSnapshot::TopKTriples(
    size_t k, const TripleFilter& filter) const {
  if (k == 0) return {};
  std::vector<std::vector<query::TripleTruth>> lists(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] == nullptr) continue;
    lists[s] = shards_[s]->TopKTriples(k, filter);
  }
  // Duplicated keys: the heap order ends in the cross-shard tie-breaks,
  // so the FIRST pop of a key is its winner; later copies are skipped.
  // Fetching k per shard stays exact — a merged top-k key's winner copy
  // outranks (in its own shard) only keys that are also merged-above it,
  // so it sits within that shard's top k.
  std::set<std::pair<uint64_t, uint32_t>> seen;
  std::vector<query::TripleTruth> merged;
  merged.reserve(k);
  HeapMerge(lists, BeatsTripleRanked,
            [&](const query::TripleTruth& triple, uint32_t /*shard*/) {
              if (seen.emplace(triple.item, triple.value).second) {
                merged.push_back(triple);
              }
              return merged.size() < k;
            });
  return merged;
}

MergedSnapshotDiff DiffMergedSnapshots(const MergedSnapshot& before,
                                       const MergedSnapshot& after,
                                       size_t top_k) {
  MergedSnapshotDiff diff;
  const size_t num_shards = std::max(before.num_shards(), after.num_shards());
  diff.shard_diffs.resize(num_shards);
  std::vector<std::vector<SourceMove>> move_lists(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const Snapshot* b = before.shard(s);
    const Snapshot* a = after.shard(s);
    if (b == nullptr || a == nullptr) continue;
    diff.shard_diffs[s] = DiffSnapshots(*b, *a, top_k);
    const SnapshotDiff& d = diff.shard_diffs[s];
    diff.sources_added += d.sources_added;
    diff.sources_removed += d.sources_removed;
    diff.websites_added += d.websites_added;
    diff.websites_removed += d.websites_removed;
    diff.triples_added += d.triples_added;
    diff.triples_removed += d.triples_removed;
    move_lists[s] = d.top_website_moves;
  }
  if (top_k == 0) return diff;
  // Alignment rows diff as delta-0 entries in non-owner shards; dedup by
  // id keeps the first (largest-|delta|) record — the owner's.
  std::set<uint32_t> seen;
  HeapMerge(move_lists, BeatsMove,
            [&](const SourceMove& move, uint32_t /*shard*/) {
              if (seen.insert(move.id).second) {
                diff.top_website_moves.push_back(move);
              }
              return diff.top_website_moves.size() < top_k;
            });
  return diff;
}

}  // namespace kbt::query
