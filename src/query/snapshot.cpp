#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "kbt/query.h"

namespace kbt::query {

namespace {

/// Hash of a triple key, full-avalanche over both halves so linear probing
/// stays short even though items share high bits (subject << 32 | pred).
uint64_t HashTripleKey(kb::DataItemId item, kb::ValueId value) {
  return HashChain(Mix64(item), value);
}

/// Smallest power of two holding `n` entries at < 50% load (minimum 16, so
/// tiny snapshots still probe well).
size_t TableCapacity(size_t n) {
  size_t capacity = 16;
  while (capacity < n * 2) capacity <<= 1;
  return capacity;
}

/// Inserts position `pos` under `hash` into an open-addressing table whose
/// entries are position + 1 (0 = empty). Duplicate keys keep the first
/// insertion (matching the report's first-seen prediction order).
template <typename SameKey>
void TableInsert(std::vector<uint32_t>& table, uint64_t hash, uint32_t pos,
                 const SameKey& same_key) {
  const size_t mask = table.size() - 1;
  for (size_t bucket = hash & mask;; bucket = (bucket + 1) & mask) {
    if (table[bucket] == 0) {
      table[bucket] = pos + 1;
      return;
    }
    if (same_key(table[bucket] - 1)) return;
  }
}

/// Probes the table for a position whose key matches; nullopt on a miss.
template <typename SameKey>
std::optional<uint32_t> TableFind(const std::vector<uint32_t>& table,
                                  uint64_t hash, const SameKey& same_key) {
  if (table.empty()) return std::nullopt;
  const size_t mask = table.size() - 1;
  for (size_t bucket = hash & mask;; bucket = (bucket + 1) & mask) {
    if (table[bucket] == 0) return std::nullopt;
    const uint32_t pos = table[bucket] - 1;
    if (same_key(pos)) return pos;
  }
}

/// Sort order over (score descending, id ascending): the rank arrays.
std::vector<uint32_t> RankOrder(
    const std::vector<std::pair<double, double>>& scores) {
  std::vector<uint32_t> order(scores.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](uint32_t a, uint32_t b) {
    if (scores[a].first != scores[b].first) {
      return scores[a].first > scores[b].first;
    }
    return a < b;
  });
  return order;
}

}  // namespace

Snapshot Snapshot::Build(const api::TrustReport& report,
                         const SnapshotInfo& stamp,
                         const SnapshotOptions& options) {
  Snapshot snapshot;
  snapshot.info_ = stamp;
  snapshot.info_.sequence = 0;  // Assigned by SnapshotRegistry::Publish.
  snapshot.info_.model = report.model;
  snapshot.info_.granularity = report.granularity;
  snapshot.info_.counts = report.counts;
  snapshot.min_evidence_ = options.min_evidence;

  // ---- Scores: copy the report's doubles verbatim (bit-for-bit serving).
  snapshot.source_kbt_.reserve(report.source_kbt.size());
  for (const core::KbtScore& score : report.source_kbt) {
    snapshot.source_kbt_.emplace_back(score.kbt, score.evidence);
  }
  snapshot.website_kbt_.reserve(report.website_kbt.size());
  for (const core::KbtScore& score : report.website_kbt) {
    snapshot.website_kbt_.emplace_back(score.kbt, score.evidence);
  }

  // ---- Triples: report order, with items contiguous. TriplePredictions
  // emits items contiguously already; a stable sort restores contiguity
  // for hand-assembled reports without reordering values within an item
  // (first-seen order is part of ItemValues' contract).
  snapshot.triples_.reserve(report.predictions.size());
  for (const eval::TriplePrediction& prediction : report.predictions) {
    snapshot.triples_.push_back(query::TripleTruth{
        prediction.item, prediction.value, prediction.probability,
        prediction.covered});
  }
  bool contiguous = true;
  {
    std::unordered_set<kb::DataItemId> run_items;
    for (size_t i = 0; i < snapshot.triples_.size(); ++i) {
      if (i > 0 && snapshot.triples_[i].item == snapshot.triples_[i - 1].item) {
        continue;  // Same run.
      }
      if (!run_items.insert(snapshot.triples_[i].item).second) {
        contiguous = false;  // An item started a second run.
        break;
      }
    }
  }
  if (!contiguous) {
    std::stable_sort(snapshot.triples_.begin(), snapshot.triples_.end(),
                     [](const query::TripleTruth& a,
                        const query::TripleTruth& b) {
                       return a.item < b.item;
                     });
  }

  // ---- Dedup within each item run, first occurrence wins (pipeline
  // reports are already distinct per (item, value); hand-assembled ones
  // may not be, and a duplicate would over-count num_triples and give
  // DiffSnapshots more hash hits than distinct keys). Runs are small
  // (a handful of candidate values per item), so the inner scan is cheap.
  {
    size_t write = 0;
    size_t run_start = 0;
    for (size_t t = 0; t < snapshot.triples_.size(); ++t) {
      const query::TripleTruth& triple = snapshot.triples_[t];
      if (write > 0 && snapshot.triples_[write - 1].item != triple.item) {
        run_start = write;
      }
      bool duplicate = false;
      for (size_t k = run_start; k < write; ++k) {
        if (snapshot.triples_[k].value == triple.value) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) snapshot.triples_[write++] = triple;
    }
    snapshot.triples_.resize(write);
  }

  // ---- Per-item ranges over the contiguous triple array.
  for (uint32_t t = 0; t < snapshot.triples_.size(); ++t) {
    if (snapshot.item_ids_.empty() ||
        snapshot.item_ids_.back() != snapshot.triples_[t].item) {
      snapshot.item_ids_.push_back(snapshot.triples_[t].item);
      snapshot.item_offsets_.push_back(t);
    }
  }
  snapshot.item_offsets_.push_back(
      static_cast<uint32_t>(snapshot.triples_.size()));

  // ---- Hash indexes (sealed: sized once, never rehashed).
  if (!snapshot.triples_.empty()) {
    snapshot.triple_table_.assign(TableCapacity(snapshot.triples_.size()), 0);
    for (uint32_t t = 0; t < snapshot.triples_.size(); ++t) {
      const query::TripleTruth& triple = snapshot.triples_[t];
      TableInsert(snapshot.triple_table_,
                  HashTripleKey(triple.item, triple.value), t,
                  [&snapshot, &triple](uint32_t pos) {
                    return snapshot.triples_[pos].item == triple.item &&
                           snapshot.triples_[pos].value == triple.value;
                  });
    }
    snapshot.item_table_.assign(TableCapacity(snapshot.item_ids_.size()), 0);
    for (uint32_t i = 0; i < snapshot.item_ids_.size(); ++i) {
      const kb::DataItemId item = snapshot.item_ids_[i];
      TableInsert(snapshot.item_table_, Mix64(item), i,
                  [&snapshot, item](uint32_t pos) {
                    return snapshot.item_ids_[pos] == item;
                  });
    }
  }

  // ---- Rank orders.
  snapshot.sources_by_kbt_ = RankOrder(snapshot.source_kbt_);
  snapshot.websites_by_kbt_ = RankOrder(snapshot.website_kbt_);
  snapshot.triples_by_prob_.resize(snapshot.triples_.size());
  for (uint32_t i = 0; i < snapshot.triples_by_prob_.size(); ++i) {
    snapshot.triples_by_prob_[i] = i;
  }
  std::sort(snapshot.triples_by_prob_.begin(),
            snapshot.triples_by_prob_.end(),
            [&snapshot](uint32_t a, uint32_t b) {
              const query::TripleTruth& ta = snapshot.triples_[a];
              const query::TripleTruth& tb = snapshot.triples_[b];
              if (ta.probability != tb.probability) {
                return ta.probability > tb.probability;
              }
              if (ta.item != tb.item) return ta.item < tb.item;
              return ta.value < tb.value;
            });
  return snapshot;
}

std::optional<uint32_t> Snapshot::FindTriple(kb::DataItemId item,
                                             kb::ValueId value) const {
  return TableFind(triple_table_, HashTripleKey(item, value),
                   [this, item, value](uint32_t pos) {
                     return triples_[pos].item == item &&
                            triples_[pos].value == value;
                   });
}

std::optional<uint32_t> Snapshot::FindItem(kb::DataItemId item) const {
  return TableFind(item_table_, Mix64(item), [this, item](uint32_t pos) {
    return item_ids_[pos] == item;
  });
}

query::SourceTrust Snapshot::MakeSourceTrust(uint32_t id, size_t index) const {
  const auto& [kbt, evidence] = source_kbt_[index];
  return query::SourceTrust{id, kbt, evidence, evidence >= min_evidence_};
}

query::SourceTrust Snapshot::MakeWebsiteTrust(uint32_t id,
                                              size_t index) const {
  const auto& [kbt, evidence] = website_kbt_[index];
  return query::SourceTrust{id, kbt, evidence, evidence >= min_evidence_};
}

query::TripleTruth Snapshot::MakeTriple(size_t index) const {
  return triples_[index];
}

std::optional<query::SourceTrust> Snapshot::SourceTrust(
    uint32_t source_group) const {
  if (source_group >= source_kbt_.size()) return std::nullopt;
  return MakeSourceTrust(source_group, source_group);
}

std::optional<query::SourceTrust> Snapshot::WebsiteTrust(
    kb::WebsiteId website) const {
  if (website >= website_kbt_.size()) return std::nullopt;
  return MakeWebsiteTrust(website, website);
}

std::optional<query::TripleTruth> Snapshot::TripleTruth(
    kb::DataItemId item, kb::ValueId value) const {
  const std::optional<uint32_t> pos = FindTriple(item, value);
  if (!pos) return std::nullopt;
  return MakeTriple(*pos);
}

std::vector<std::optional<query::SourceTrust>> Snapshot::BatchSourceTrust(
    const std::vector<uint32_t>& source_groups) const {
  std::vector<std::optional<query::SourceTrust>> out;
  out.reserve(source_groups.size());
  for (const uint32_t id : source_groups) out.push_back(SourceTrust(id));
  return out;
}

std::vector<std::optional<query::TripleTruth>> Snapshot::BatchTripleTruth(
    const std::vector<TripleKey>& keys) const {
  std::vector<std::optional<query::TripleTruth>> out;
  out.reserve(keys.size());
  for (const TripleKey& key : keys) {
    out.push_back(TripleTruth(key.item, key.value));
  }
  return out;
}

std::vector<query::TripleTruth> Snapshot::ItemValues(
    kb::DataItemId item) const {
  std::vector<query::TripleTruth> out;
  const std::optional<uint32_t> pos = FindItem(item);
  if (!pos) return out;
  const uint32_t begin = item_offsets_[*pos];
  const uint32_t end = item_offsets_[*pos + 1];
  out.reserve(end - begin);
  for (uint32_t t = begin; t < end; ++t) out.push_back(triples_[t]);
  return out;
}

namespace {

/// Shared top-k walk over a rank order: collect the first k entries that
/// pass the filter.
template <typename Make>
std::vector<query::SourceTrust> TopKScored(
    const std::vector<uint32_t>& order, size_t k, double default_min_evidence,
    const SourceFilter& filter, const Make& make) {
  std::vector<query::SourceTrust> out;
  if (k == 0) return out;
  const double min_evidence =
      filter.min_evidence.value_or(default_min_evidence);
  out.reserve(std::min(k, order.size()));
  for (const uint32_t id : order) {
    query::SourceTrust candidate = make(id);
    if (candidate.evidence < min_evidence) continue;
    if (filter.predicate && !filter.predicate(candidate)) continue;
    out.push_back(std::move(candidate));
    if (out.size() == k) break;
  }
  return out;
}

}  // namespace

std::vector<query::SourceTrust> Snapshot::TopKSources(
    size_t k, const SourceFilter& filter) const {
  return TopKScored(sources_by_kbt_, k, min_evidence_, filter,
                    [this](uint32_t id) { return MakeSourceTrust(id, id); });
}

std::vector<query::SourceTrust> Snapshot::TopKWebsites(
    size_t k, const SourceFilter& filter) const {
  return TopKScored(websites_by_kbt_, k, min_evidence_, filter,
                    [this](uint32_t id) { return MakeWebsiteTrust(id, id); });
}

std::vector<query::TripleTruth> Snapshot::TopKTriples(
    size_t k, const TripleFilter& filter) const {
  std::vector<query::TripleTruth> out;
  if (k == 0) return out;
  out.reserve(std::min(k, triples_by_prob_.size()));
  for (const uint32_t pos : triples_by_prob_) {
    const query::TripleTruth& candidate = triples_[pos];
    if (filter.covered_only && !candidate.covered) continue;
    if (filter.predicate && !filter.predicate(candidate)) continue;
    out.push_back(candidate);
    if (out.size() == k) break;
  }
  return out;
}

}  // namespace kbt::query
