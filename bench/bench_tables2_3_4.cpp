// Reproduces Tables 2, 3 and 4 of the paper: the motivating example
// (Obama's nationality as seen by 5 extractors over 8 webpages), the
// extractor vote counts, and the inferred extraction correctness / value
// posterior.
#include <cstdio>
#include <map>

#include "bench/bench_json.h"
#include "common/math.h"
#include "exp/motivating_example.h"
#include "exp/table_printer.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

namespace {

using kbt::exp::MotivatingExample;
using kbt::exp::PrintBanner;
using kbt::exp::TablePrinter;

const char* ValueName(kbt::kb::ValueId v) {
  switch (v) {
    case MotivatingExample::kUsa:
      return "USA";
    case MotivatingExample::kKenya:
      return "Kenya";
    case MotivatingExample::kNAmerica:
      return "N.Amer.";
    default:
      return "-";
  }
}

}  // namespace

int main() {
  const auto data = MotivatingExample::Dataset();
  const auto provided = MotivatingExample::ProvidedValues();
  kbt::bench::BenchJsonWriter writer("tables2_3_4", false);
  writer.AddMetadata("observations", static_cast<double>(data.size()));

  // ---------------- Table 2: the extraction matrix ----------------
  PrintBanner("Table 2: Obama's nationality extracted by 5 extractors from 8 webpages");
  {
    TablePrinter table({"", "Value", "E1", "E2", "E3", "E4", "E5"});
    for (int page = 0; page < 8; ++page) {
      std::vector<std::string> row(7, "");
      row[0] = "W" + std::to_string(page + 1);
      row[1] = ValueName(provided[static_cast<size_t>(page)]);
      for (const auto& obs : data.observations) {
        if (static_cast<int>(obs.page) == page) {
          row[2 + obs.extractor] = ValueName(obs.value);
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  // ---------------- Table 3: extractor quality and votes ----------------
  PrintBanner("Table 3: quality and vote counts of extractors (gamma=0.25)");
  {
    TablePrinter table({"", "E1", "E2", "E3", "E4", "E5"});
    const auto rows = MotivatingExample::Table3Rows();
    std::vector<std::string> q{"Q(Ei)"};
    std::vector<std::string> r{"R(Ei)"};
    std::vector<std::string> p{"P(Ei)"};
    std::vector<std::string> pre{"Pre(Ei)"};
    std::vector<std::string> abs{"Abs(Ei)"};
    for (const auto& row : rows) {
      q.push_back(TablePrinter::Fmt(row.q, 2));
      r.push_back(TablePrinter::Fmt(row.r, 2));
      p.push_back(TablePrinter::Fmt(row.p, 2));
      const auto votes = kbt::core::ComputeVotes(row.r, row.q, 1.0);
      pre.push_back(TablePrinter::Fmt(votes.presence, 1));
      abs.push_back(TablePrinter::Fmt(votes.weighted_absence, 2));
    }
    table.AddRow(q);
    table.AddRow(r);
    table.AddRow(p);
    table.AddRow(pre);
    table.AddRow(abs);
    table.Print();
  }

  // ---------------- Table 4: inference outputs ----------------
  PrintBanner("Table 4: extraction correctness p(C=1|X) and value posterior");
  {
    const auto assignment = kbt::granularity::PageSourcePlainExtractor(data);
    auto matrix = kbt::extract::CompiledMatrix::Build(data, assignment);
    if (!matrix.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   matrix.status().ToString().c_str());
      return 1;
    }
    kbt::core::MultiLayerConfig config;
    config.max_iterations = 1;
    config.update_source_accuracy = false;
    config.update_extractor_quality = false;
    config.update_alpha = false;
    config.min_source_support = 1;
    config.min_extractor_support = 1;
    config.num_false_override = 10;
    config.initial_alpha = 0.5;
    config.calibrate_correctness = false;
    const auto result = kbt::core::MultiLayerModel::Run(
        *matrix, config, MotivatingExample::Table3Quality());
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }

    TablePrinter table({"", "USA", "Kenya", "N.Amer."});
    const kbt::kb::ValueId values[3] = {MotivatingExample::kUsa,
                                        MotivatingExample::kKenya,
                                        MotivatingExample::kNAmerica};
    std::map<std::pair<int, kbt::kb::ValueId>, double> cprob;
    std::map<kbt::kb::ValueId, double> vprob;
    for (size_t s = 0; s < matrix->num_slots(); ++s) {
      cprob[{static_cast<int>(matrix->slot_source(s)),
             matrix->slot_value(s)}] = result->slot_correct_prob[s];
      vprob[matrix->slot_value(s)] = result->slot_value_prob[s];
    }
    for (int page = 0; page < 8; ++page) {
      std::vector<std::string> row{"W" + std::to_string(page + 1)};
      for (kbt::kb::ValueId v : values) {
        const auto it = cprob.find({page, v});
        row.push_back(it == cprob.end() ? "-"
                                        : TablePrinter::Fmt(it->second, 2));
      }
      table.AddRow(std::move(row));
    }
    std::vector<std::string> last{"p(V|C)"};
    for (kbt::kb::ValueId v : values) {
      last.push_back(TablePrinter::Fmt(vprob.count(v) ? vprob[v] : 0.0, 3));
    }
    table.AddRow(std::move(last));
    table.Print();
    std::printf(
        "\nPaper reference: W1..W6 rows 1/0, W7 Kenya 0.07; p(V) = "
        "0.995 USA / 0.004 Kenya.\n");
    writer.AddMetric("p_usa",
                     vprob.count(MotivatingExample::kUsa)
                         ? vprob[MotivatingExample::kUsa]
                         : 0.0,
                     "probability");
    writer.AddMetric("p_kenya",
                     vprob.count(MotivatingExample::kKenya)
                         ? vprob[MotivatingExample::kKenya]
                         : 0.0,
                     "probability");
  }
  return writer.WriteFile("BENCH_tables2_3_4.json") ? 0 : 1;
}
