// Reproduces Figure 9: precision-recall curves for SINGLELAYER+,
// MULTILAYER+ and MULTILAYERSM+ on the KV simulation. Printed as precision
// sampled on a fixed recall grid.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "dataflow/parallel.h"
#include "eval/gold_standard.h"
#include "eval/metrics.h"
#include "exp/kv_sim.h"
#include "exp/runners.h"
#include "exp/table_printer.h"

namespace {

using namespace kbt;

std::vector<eval::PrPoint> PrFor(const exp::MethodRun& run,
                                 const eval::GoldStandard& gold) {
  std::vector<double> probs;
  std::vector<uint8_t> truth;
  for (const auto& p : run.predictions) {
    if (!p.covered) continue;
    const auto label = gold.Label(p.item, p.value);
    if (!label.has_value()) continue;
    probs.push_back(p.probability);
    truth.push_back(*label ? 1 : 0);
  }
  return eval::PrCurve(probs, truth);
}

/// Precision of the first curve point at recall >= r.
double PrecisionAt(const std::vector<eval::PrPoint>& curve, double recall) {
  for (const auto& p : curve) {
    if (p.recall >= recall) return p.precision;
  }
  return curve.empty() ? 0.0 : curve.back().precision;
}

}  // namespace

int main() {
  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }
  const eval::GoldStandard gold(kv->partial_kb, kv->corpus.world());

  std::vector<std::vector<eval::PrPoint>> curves;
  double aucs[3] = {0, 0, 0};
  const exp::Method methods[3] = {exp::Method::kSingleLayer,
                                  exp::Method::kMultiLayer,
                                  exp::Method::kMultiLayerSM};
  for (int m = 0; m < 3; ++m) {
    exp::RunnerOptions options;
    options.smart_init = true;
    const auto run = exp::RunMethodOnKv(methods[m], *kv, gold, options,
                                        &dataflow::DefaultExecutor());
    if (!run.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    curves.push_back(PrFor(*run, gold));
    aucs[m] = run->metrics.auc_pr;
  }

  exp::PrintBanner("Figure 9: PR curves (precision at recall grid)");
  exp::TablePrinter table(
      {"Recall", "SingleLayer+", "MultiLayer+", "MultiLayerSM+"});
  for (double recall = 0.05; recall <= 1.0; recall += 0.05) {
    table.AddRow({exp::TablePrinter::Fmt(recall, 2),
                  exp::TablePrinter::Fmt(PrecisionAt(curves[0], recall), 3),
                  exp::TablePrinter::Fmt(PrecisionAt(curves[1], recall), 3),
                  exp::TablePrinter::Fmt(PrecisionAt(curves[2], recall), 3)});
  }
  table.Print();
  std::printf("\nAUC-PR: SingleLayer+ %.3f, MultiLayer+ %.3f, MultiLayerSM+ "
              "%.3f\n(paper: 0.630 / 0.693 / 0.631 — multi-layer has the "
              "best curve).\n",
              aucs[0], aucs[1], aucs[2]);

  kbt::bench::BenchJsonWriter writer("fig9_pr_curves", false);
  writer.AddMetric("auc_pr_single_layer", aucs[0], "auc");
  writer.AddMetric("auc_pr_multi_layer", aucs[1], "auc");
  writer.AddMetric("auc_pr_multi_layer_sm", aucs[2], "auc");
  return writer.WriteFile("BENCH_fig9.json") ? 0 : 1;
}
