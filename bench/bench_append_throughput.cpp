// Append throughput: streaming observation deltas into a compiled cube.
//
// The serving story appends extraction events continuously; before the
// incremental path, every AppendObservations dropped the compiled matrix
// and the next run re-ran granularity + compilation over the *entire* cube
// (O(full rebuild) per delta). The patch path extends the cached group
// assignment with stable ids and merge-patches the CSR structures, so an
// append costs O(delta) discovery plus a hash-free linear merge.
//
// This bench compiles a base cube, then streams batches of observations:
//   append_seconds   — one AppendObservations call on the live pipeline
//                      (extender + CSR patch, the incremental path);
//   rebuild_seconds  — the Granularity + Compile stages of a fresh pipeline
//                      over the same grown cube (what invalidation cost).
// Results land in BENCH_append.json for the perf-trend tooling.
//
// Usage: bench_append_throughput [--smoke]   (--smoke: tiny cube for CI)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

namespace {

using namespace kbt;

struct BatchTiming {
  size_t delta = 0;
  size_t total_observations = 0;
  double append_seconds = 0.0;
  double rebuild_seconds = 0.0;
};

/// Granularity + Compile seconds of one fresh run over `data` — the price
/// the old invalidate-on-append path paid on the run after every delta.
double RebuildSeconds(const extract::RawDataset& data,
                      const api::Options& options) {
  auto pipeline =
      api::PipelineBuilder().FromDataset(data).WithOptions(options).Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "rebuild pipeline failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  const auto report = pipeline->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "rebuild run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  double seconds = 0.0;
  for (const auto& [stage, s] : report->stage_seconds) {
    if (stage == "Granularity" || stage == "Compile") seconds += s;
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // A cube big enough that full recompilation visibly dominates a delta.
  exp::SyntheticConfig config;
  config.num_sources = smoke ? 25 : 400;
  config.num_extractors = smoke ? 4 : 8;
  config.num_subjects = smoke ? 20 : 60;
  config.num_predicates = smoke ? 5 : 8;
  config.seed = 2015;
  const exp::SyntheticData synthetic = exp::GenerateSynthetic(config);
  const extract::RawDataset& full = synthetic.data;

  const size_t num_batches = smoke ? 3 : 8;
  const size_t batch_size =
      std::max<size_t>(1, smoke ? 64 : full.size() / 200);
  const size_t base_size = full.size() - num_batches * batch_size;
  if (full.size() <= num_batches * batch_size) {
    std::fprintf(stderr, "cube too small for the batch plan\n");
    return 1;
  }

  api::Options options;
  options.granularity = api::Granularity::kFinest;
  options.multilayer.max_iterations = 1;  // Compile costs, not EM, matter.

  extract::RawDataset base = full;
  base.observations.resize(base_size);
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(std::move(base))
                      .WithOptions(options)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  // First run compiles the base cube and warms the cache the appends patch.
  const auto first = pipeline->Run();
  if (!first.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }

  std::printf("base cube: %zu observations, %u sources, %u extractor "
              "groups; streaming %zu batches of %zu\n",
              pipeline->dataset().size(), first->counts.num_sources,
              first->counts.num_extractor_groups, num_batches, batch_size);

  std::vector<BatchTiming> batches;
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t begin = base_size + b * batch_size;
    const std::vector<extract::RawObservation> delta(
        full.observations.begin() + begin,
        full.observations.begin() + begin + batch_size);

    Stopwatch watch;
    const Status appended = pipeline->AppendObservations(delta);
    const double append_seconds = watch.ElapsedSeconds();
    if (!appended.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   appended.ToString().c_str());
      return 1;
    }
    if (pipeline->compiled_matrix() == nullptr) {
      std::fprintf(stderr,
                   "append fell back to invalidation — the incremental path "
                   "did not engage\n");
      return 1;
    }

    BatchTiming t;
    t.delta = batch_size;
    t.total_observations = pipeline->dataset().size();
    t.append_seconds = append_seconds;
    t.rebuild_seconds = RebuildSeconds(pipeline->dataset(), options);
    batches.push_back(t);
  }

  // The patched matrix must serve the same report a fresh compile would.
  const auto patched = pipeline->Run();
  if (!patched.ok() ||
      patched->counts.num_observations != full.size()) {
    std::fprintf(stderr, "patched pipeline is inconsistent\n");
    return 1;
  }

  exp::PrintBanner("Append throughput: patch vs full recompilation");
  exp::TablePrinter table({"Batch", "Cube size", "Append (ms)",
                           "Rebuild (ms)", "Speedup"});
  double append_total = 0.0;
  double rebuild_total = 0.0;
  for (size_t b = 0; b < batches.size(); ++b) {
    const BatchTiming& t = batches[b];
    append_total += t.append_seconds;
    rebuild_total += t.rebuild_seconds;
    table.AddRow({std::to_string(b + 1),
                  exp::TablePrinter::FmtCount(t.total_observations),
                  exp::TablePrinter::Fmt(t.append_seconds * 1e3),
                  exp::TablePrinter::Fmt(t.rebuild_seconds * 1e3),
                  exp::TablePrinter::Fmt(t.rebuild_seconds /
                                         t.append_seconds, 1) + "x"});
  }
  table.Print();
  std::printf("\ntotals: append %.3f ms vs rebuild %.3f ms (%.1fx); an "
              "append touches the delta plus a linear merge, a rebuild "
              "re-hashes and re-sorts the whole cube\n",
              append_total * 1e3, rebuild_total * 1e3,
              rebuild_total / append_total);

  // ---- Machine-readable output for the perf trajectory ----
  bench::BenchJsonWriter writer("append_throughput", smoke);
  writer.AddMetadata("base_observations", static_cast<double>(base_size));
  writer.AddMetadata("batch_size", static_cast<double>(batch_size));
  writer.AddMetric("append_total_seconds", append_total, "seconds");
  writer.AddMetric("rebuild_total_seconds", rebuild_total, "seconds");
  writer.AddMetric("speedup", rebuild_total / append_total, "ratio");
  std::string batch_json = "[";
  for (size_t b = 0; b < batches.size(); ++b) {
    const BatchTiming& t = batches[b];
    batch_json += b == 0 ? "\n" : ",\n";
    batch_json += "    {\"cube_size\": " +
                  bench::JsonNumber(static_cast<double>(t.total_observations)) +
                  ", \"append_seconds\": " +
                  bench::JsonNumber(t.append_seconds) +
                  ", \"rebuild_seconds\": " +
                  bench::JsonNumber(t.rebuild_seconds) + "}";
  }
  batch_json += "\n  ]";
  writer.AddRawSection("batches", batch_json);
  return writer.WriteFile("BENCH_append.json") ? 0 : 1;
}
