// Ablation of the KBT refinements the paper proposes as future work
// (Section 5.4.2): plain KBT vs topic-filtered KBT vs IDF-weighted KBT —
// measured by how well each variant recovers the true site accuracy — plus
// copy detection evaluated against the corpus generator's known
// scraper -> victim pairs.
#include <algorithm>
#include <cstdio>

#include "bench/bench_json.h"
#include "dataflow/parallel.h"
#include "eval/copy_detection.h"
#include "exp/kv_sim.h"
#include "exp/table_printer.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "pagerank/pagerank.h"
#include "core/kbt_extensions.h"
#include "core/kbt_score.h"
#include "core/multilayer_model.h"

int main() {
  using namespace kbt;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }
  const auto assignment = granularity::FinestAssignment(kv->data);
  const auto matrix = extract::CompiledMatrix::Build(kv->data, assignment);
  if (!matrix.ok()) return 1;
  core::MultiLayerConfig config;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(
      *matrix, config, {}, &dataflow::DefaultExecutor());
  if (!result.ok()) return 1;

  const uint32_t num_sites = static_cast<uint32_t>(kv->corpus.num_websites());
  const auto plain = core::ComputeWebsiteKbt(*matrix, *result, num_sites);
  const auto topics = core::WebsiteTopics(*matrix, num_sites);
  const auto topical =
      core::ComputeTopicalKbt(*matrix, *result, num_sites, topics);
  const auto idf = core::ComputeIdfWeightedKbt(*matrix, *result, num_sites);

  // Correlation of each variant with the true site accuracy.
  const auto correlation = [&](const std::vector<core::KbtScore>& scores) {
    std::vector<double> kbt;
    std::vector<double> truth;
    for (uint32_t w = 0; w < num_sites; ++w) {
      if (!scores[w].HasScore(5.0)) continue;
      kbt.push_back(scores[w].kbt);
      truth.push_back(kv->corpus.EmpiricalSiteAccuracy(w));
    }
    return pagerank::PearsonCorrelation(kbt, truth);
  };

  exp::PrintBanner("KBT variants vs true site accuracy (Section 5.4.2)");
  exp::TablePrinter table({"Variant", "corr(KBT, true accuracy)"});
  table.AddRow({"plain KBT", exp::TablePrinter::Fmt(correlation(plain))});
  table.AddRow(
      {"topic-filtered KBT", exp::TablePrinter::Fmt(correlation(topical))});
  table.AddRow({"IDF-weighted KBT", exp::TablePrinter::Fmt(correlation(idf))});
  table.Print();

  // ---- Copy detection vs the generator's scraper ground truth ----
  // Popular misconceptions are heavily shared in this corpus, so single
  // shared-false claims are weak evidence; wholesale copying shows up as a
  // LARGE shared claim set with false claims inside.
  eval::CopyDetectionConfig cd;
  cd.min_shared_claims = 8;
  cd.min_score = 0.85;
  const auto pairs =
      eval::DetectCopying(*matrix, result->slot_value_prob, num_sites, cd);

  size_t scrapers = 0;
  for (const auto& site : kv->corpus.websites()) {
    if (site.category == corpus::SourceCategory::kScraper &&
        site.scrape_victim != kb::kInvalidId) {
      ++scrapers;
    }
  }
  size_t detected_true = 0;
  for (const auto& pair : pairs) {
    const auto& a = kv->corpus.website(pair.site_a);
    const auto& b = kv->corpus.website(pair.site_b);
    const bool is_real_copy =
        (a.category == corpus::SourceCategory::kScraper &&
         a.scrape_victim == pair.site_b) ||
        (b.category == corpus::SourceCategory::kScraper &&
         b.scrape_victim == pair.site_a);
    detected_true += is_real_copy ? 1 : 0;
  }

  const double copy_precision =
      pairs.empty() ? 0.0
                    : static_cast<double>(detected_true) /
                          static_cast<double>(pairs.size());
  const double copy_recall =
      scrapers == 0 ? 0.0
                    : static_cast<double>(detected_true) /
                          static_cast<double>(scrapers);
  exp::PrintBanner("Copy detection (Section 5.4.2, item 4)");
  std::printf(
      "reported pairs: %zu; true scraper->victim pairs among them: %zu;\n"
      "scrapers in the corpus: %zu  -> precision %.2f, recall %.2f\n",
      pairs.size(), detected_true, scrapers, copy_precision, copy_recall);
  int shown = 0;
  for (const auto& pair : pairs) {
    if (shown++ >= 5) break;
    std::printf("  %s <-> %s: score %.2f (%d shared, %d shared-false)\n",
                kv->corpus.website(pair.site_a).domain.c_str(),
                kv->corpus.website(pair.site_b).domain.c_str(), pair.score,
                pair.shared_claims, pair.shared_false_claims);
  }

  bench::BenchJsonWriter writer("kbt_variants", false);
  writer.AddMetric("copy_detection_pairs",
                   static_cast<double>(pairs.size()), "count");
  writer.AddMetric("copy_detection_true_pairs",
                   static_cast<double>(detected_true), "count");
  writer.AddMetric("copy_detection_precision", copy_precision, "ratio");
  writer.AddMetric("copy_detection_recall", copy_recall, "ratio");
  return writer.WriteFile("BENCH_kbt_variants.json") ? 0 : 1;
}
