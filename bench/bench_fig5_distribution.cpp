// Reproduces Figure 5: the distribution of the number of distinct extracted
// triples per URL and per extraction pattern on the KV simulation. The
// paper's observation — most URLs/patterns contribute fewer than 5 triples
// while a few whales contribute orders of magnitude more — motivates
// SPLITANDMERGE.
#include <cstdio>
#include <set>
#include <unordered_map>

#include "bench/bench_json.h"
#include "common/histogram.h"
#include "exp/kv_sim.h"
#include "exp/table_printer.h"

int main() {
  using namespace kbt;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Skewed());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed: %s\n",
                 kv.status().ToString().c_str());
    return 1;
  }

  // Count distinct (item, value) triples per URL and per pattern.
  std::unordered_map<uint32_t, std::set<std::pair<kb::DataItemId, kb::ValueId>>>
      per_url;
  std::unordered_map<uint32_t, std::set<std::pair<kb::DataItemId, kb::ValueId>>>
      per_pattern;
  for (const auto& obs : kv->data.observations) {
    per_url[obs.page].emplace(obs.item, obs.value);
    per_pattern[obs.pattern].emplace(obs.item, obs.value);
  }

  Histogram url_hist = Histogram::TripleCountBuckets();
  for (const auto& [url, triples] : per_url) {
    url_hist.Add(static_cast<double>(triples.size()));
  }
  Histogram pattern_hist = Histogram::TripleCountBuckets();
  for (const auto& [pattern, triples] : per_pattern) {
    pattern_hist.Add(static_cast<double>(triples.size()));
  }

  exp::PrintBanner("Figure 5: distribution of #triples per URL / pattern");
  exp::TablePrinter table({"#Triples", "#URLs", "%URLs", "#Patterns",
                           "%Patterns"});
  const char* labels[] = {"1",      "2",       "3",        "4",
                          "5",      "6",       "7",        "8",
                          "9",      "10",      "11-100",   "100-1K",
                          "1K-10K", "10K-100K", "100K-1M", ">1M"};
  for (size_t b = 0; b < url_hist.num_buckets(); ++b) {
    table.AddRow({labels[b],
                  exp::TablePrinter::FmtCount(
                      static_cast<size_t>(url_hist.bucket_count(b))),
                  exp::TablePrinter::Fmt(100.0 * url_hist.Fraction(b), 1),
                  exp::TablePrinter::FmtCount(
                      static_cast<size_t>(pattern_hist.bucket_count(b))),
                  exp::TablePrinter::Fmt(100.0 * pattern_hist.Fraction(b),
                                         1)});
  }
  table.Print();

  // The headline statistics of Section 5.3.1.
  double small_urls = 0.0;
  for (size_t b = 0; b < 5; ++b) small_urls += url_hist.Fraction(b);
  double small_patterns = 0.0;
  for (size_t b = 0; b < 5; ++b) small_patterns += pattern_hist.Fraction(b);
  std::printf(
      "\n%.0f%% of URLs contribute fewer than 5 triples (paper: 74%%);\n"
      "%.0f%% of patterns extract fewer than 5 triples (paper: 48%%).\n"
      "Long tail + whales motivates SPLITANDMERGE (Section 4).\n",
      100.0 * small_urls, 100.0 * small_patterns);

  bench::BenchJsonWriter writer("fig5_distribution", false);
  writer.AddMetadata("corpus_observations",
                     static_cast<double>(kv->data.size()));
  writer.AddMetric("urls_below_5_triples_fraction", small_urls, "ratio");
  writer.AddMetric("patterns_below_5_triples_fraction", small_patterns,
                   "ratio");
  std::string buckets = "[";
  for (size_t b = 0; b < url_hist.num_buckets(); ++b) {
    buckets += b == 0 ? "\n" : ",\n";
    buckets += std::string("    {\"bucket\": \"") + labels[b] +
               "\", \"urls\": " +
               bench::JsonNumber(url_hist.bucket_count(b)) +
               ", \"patterns\": " +
               bench::JsonNumber(pattern_hist.bucket_count(b)) + "}";
  }
  buckets += "\n  ]";
  writer.AddRawSection("buckets", buckets);
  return writer.WriteFile("BENCH_fig5.json") ? 0 : 1;
}
