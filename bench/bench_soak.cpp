// Latency-under-load soak: one TrustService session under a mixed
// query / append / run / tick workload, with every request class timed
// into kbt::obs histograms and reported as p50/p99.
//
// This is the serving-shape complement to the per-subsystem throughput
// benches: instead of measuring one path at peak, it runs all four paths
// *concurrently* against one session for a fixed wall-clock window —
// queries on reader threads (lock-free snapshot path), appends and runs
// queuing FIFO on the session strand, stream ticks interleaving on the
// same strand — and reads the latency distributions off the same
// kbt::obs histograms production would scrape. Outputs:
//
//   BENCH_soak.json        p50/p99/max per request class, service
//                          counters, the full metrics-registry dump, and
//                          the disabled-path macro-overhead microbench;
//   BENCH_soak_trace.json  Chrome/Perfetto trace of the soak window
//                          (load into https://ui.perfetto.dev).
//
// Usage: bench_soak [--smoke] [--seconds N]
//   --smoke     2-second window on a tiny cube + pass/fail gates (CI)
//   --seconds   soak window length (default 10)
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

namespace {

using namespace kbt;

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

/// Measures one obs macro-hook configuration: mean ns per KBT_OBS_INC over
/// `iters` calls. The counter pointer is opaque to the optimizer via the
/// loop-carried dependency on the enabled flag's atomic load.
double MeasureIncNanos(obs::Counter* counter, size_t iters) {
  const uint64_t start = obs::MonotonicNanos();
  for (size_t i = 0; i < iters; ++i) {
    KBT_OBS_INC(counter);
  }
  const uint64_t stop = obs::MonotonicNanos();
  return static_cast<double>(stop - start) / static_cast<double>(iters);
}

struct ClassStats {
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  uint64_t count = 0;
};

ClassStats StatsOf(obs::Histogram* histogram) {
  const obs::HistogramSnapshot snap = histogram->Snapshot();
  ClassStats stats;
  stats.count = snap.samples;
  if (snap.samples > 0) {
    stats.p50 = snap.Quantile(0.5);
    stats.p99 = snap.Quantile(0.99);
    stats.max = snap.max_value;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double seconds = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      seconds = 2.0;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    }
  }

  // ---- Macro-overhead microbench (single-threaded, before the soak) ----
  // The disabled path is the contract: a KBT_OBS_INC behind
  // SetMetricsEnabled(false) must cost a relaxed atomic load and a
  // predictable branch — single-digit nanoseconds.
  obs::MetricsRegistry overhead_registry;
  obs::Counter* overhead_counter =
      overhead_registry.GetCounter("kbt_soak_overhead_probe_total");
  const size_t overhead_iters = smoke ? 2'000'000 : 20'000'000;
  obs::SetMetricsEnabled(false);
  const double disabled_ns = MeasureIncNanos(overhead_counter,
                                             overhead_iters);
  obs::SetMetricsEnabled(true);
  const double enabled_ns = MeasureIncNanos(overhead_counter,
                                            overhead_iters);
  std::printf("macro overhead: disabled %.2f ns/op, enabled %.2f ns/op\n",
              disabled_ns, enabled_ns);

  // ---- Service + session under its own metrics registry ----
  exp::SyntheticConfig config;
  config.num_sources = smoke ? 30 : 200;
  config.num_extractors = smoke ? 4 : 8;
  config.num_subjects = smoke ? 20 : 120;
  config.num_predicates = smoke ? 5 : 8;
  config.seed = 2015;
  const exp::SyntheticData synthetic = exp::GenerateSynthetic(config);

  api::Options options;
  options.multilayer.min_source_support = 1;
  options.multilayer.max_iterations = smoke ? 3 : 6;

  obs::MetricsRegistry registry;
  api::TrustService::ServiceOptions service_options;
  service_options.metrics = &registry;
  service_options.metrics_label = "soak";
  api::TrustService service(service_options);

  // Hold out a pool of observations to replay as append/tick deltas.
  extract::RawDataset seed = synthetic.data;
  const size_t pool_size = seed.observations.size() / 4;
  std::vector<extract::RawObservation> pool(
      seed.observations.end() - static_cast<long>(pool_size),
      seed.observations.end());
  seed.observations.resize(seed.observations.size() - pool_size);

  api::PipelineBuilder builder;
  builder.FromDataset(std::move(seed)).WithOptions(options);
  Status created = service.CreateSession("soak", std::move(builder));
  if (!created.ok()) Die("create session", created);

  auto feed = std::make_shared<stream::QueueFeed>();
  stream::StreamOptions stream_options;
  stream_options.warm_start = true;
  Status attached = service.AttachStream("soak", feed, stream_options);
  if (!attached.ok()) Die("attach stream", attached);

  // Warm the session: the queries need a published snapshot.
  auto first = service.SubmitRun("soak").get();
  if (!first.ok()) Die("first run", first.status());

  // Per-class soak latency histograms, on the same registry as the
  // service's own metrics so one Snapshot covers both.
  obs::Histogram* query_hist =
      registry.GetHistogram("kbt_soak_query_seconds");
  obs::Histogram* append_hist =
      registry.GetHistogram("kbt_soak_append_seconds");
  obs::Histogram* run_hist = registry.GetHistogram("kbt_soak_run_seconds");
  obs::Histogram* tick_hist =
      registry.GetHistogram("kbt_soak_tick_seconds");

  obs::TraceRecorder::Default().Clear();
  obs::SetTracingEnabled(true);

  const uint64_t soak_start = obs::MonotonicNanos();
  const uint64_t deadline =
      soak_start + static_cast<uint64_t>(seconds * 1e9);
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> queries_done{0};

  // Query class: two reader threads on the lock-free snapshot path,
  // timing batches of point lookups (per-op time recorded with the batch
  // size as weight, so quantiles are per-lookup).
  constexpr size_t kQueryBatch = 128;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      auto reader = service.Query("soak");
      if (!reader.ok()) {
        failed.store(true);
        return;
      }
      uint64_t probe = static_cast<uint64_t>(t) * 7919;
      while (obs::MonotonicNanos() < deadline) {
        KBT_TRACE_SPAN("soak.query_batch");
        const uint64_t start = obs::MonotonicNanos();
        double sink = 0.0;
        const query::Snapshot* view = reader->view();
        if (view == nullptr) continue;
        const uint32_t num_sources =
            static_cast<uint32_t>(view->num_sources());
        for (size_t i = 0; i < kQueryBatch; ++i) {
          probe = probe * 6364136223846793005ULL + 1442695040888963407ULL;
          if (const auto s = view->SourceTrust(
                  static_cast<uint32_t>(probe % (num_sources + 1)))) {
            sink += s->kbt;
          }
        }
        const double per_op =
            static_cast<double>(obs::MonotonicNanos() - start) * 1e-9 /
            static_cast<double>(kQueryBatch);
        query_hist->Add(per_op, static_cast<double>(kQueryBatch));
        queries_done.fetch_add(kQueryBatch, std::memory_order_relaxed);
        if (sink < 0.0) std::abort();  // consume the checksum
      }
    });
  }

  // Append class: small deltas cycled from the held-out pool, latency =
  // submit to future resolution (queue wait + coalesced batch execute).
  threads.emplace_back([&] {
    size_t cursor = 0;
    while (obs::MonotonicNanos() < deadline) {
      std::vector<extract::RawObservation> delta;
      for (size_t i = 0; i < 16; ++i) {
        delta.push_back(pool[cursor++ % pool.size()]);
      }
      const uint64_t start = obs::MonotonicNanos();
      Status appended = service.SubmitAppend("soak", std::move(delta)).get();
      append_hist->Record(
          static_cast<double>(obs::MonotonicNanos() - start) * 1e-9);
      if (!appended.ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Run class: full inference on the growing cube.
  threads.emplace_back([&] {
    while (obs::MonotonicNanos() < deadline) {
      const uint64_t start = obs::MonotonicNanos();
      auto report = service.SubmitRun("soak").get();
      run_hist->Record(
          static_cast<double>(obs::MonotonicNanos() - start) * 1e-9);
      if (!report.ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 20 : 50));
    }
  });

  // Tick class: streamed deltas through the attached engine, FIFO with
  // the appends/runs above on the session strand.
  threads.emplace_back([&] {
    size_t cursor = pool.size() / 2;
    uint64_t ticks = 0;
    while (obs::MonotonicNanos() < deadline) {
      std::vector<stream::TimedObservation> batch;
      for (size_t i = 0; i < 8; ++i) {
        batch.push_back(stream::TimedObservation{
            pool[cursor++ % pool.size()],
            static_cast<double>(ticks)});
      }
      feed->PushBatch(std::move(batch));
      const uint64_t start = obs::MonotonicNanos();
      auto result =
          service.SubmitTick("soak", static_cast<double>(++ticks)).get();
      tick_hist->Record(
          static_cast<double>(obs::MonotonicNanos() - start) * 1e-9);
      if (!result.ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 25 : 75));
    }
  });

  for (auto& thread : threads) thread.join();
  service.Drain();
  obs::SetTracingEnabled(false);
  const double soak_seconds =
      static_cast<double>(obs::MonotonicNanos() - soak_start) * 1e-9;

  if (failed.load()) {
    std::fprintf(stderr, "FAIL: a soak request class reported an error\n");
    return 1;
  }

  // ---- Report ----
  const ClassStats query_stats = StatsOf(query_hist);
  const ClassStats append_stats = StatsOf(append_hist);
  const ClassStats run_stats = StatsOf(run_hist);
  const ClassStats tick_stats = StatsOf(tick_hist);
  const api::TrustService::Stats service_stats = service.stats();

  exp::PrintBanner("Soak: latency under mixed load");
  exp::TablePrinter table({"Class", "Count", "p50 (ms)", "p99 (ms)",
                           "max (ms)"});
  const auto row = [&table](const char* name, const ClassStats& s) {
    table.AddRow({name, std::to_string(s.count),
                  exp::TablePrinter::Fmt(s.p50 * 1e3, 3),
                  exp::TablePrinter::Fmt(s.p99 * 1e3, 3),
                  exp::TablePrinter::Fmt(s.max * 1e3, 3)});
  };
  row("query (per lookup)", query_stats);
  row("append", append_stats);
  row("run", run_stats);
  row("tick", tick_stats);
  table.Print();
  std::printf("\n%.1fs window; %" PRIu64 " lookups; service: %zu runs, "
              "%zu appends (%zu coalesced), %zu snapshots\n",
              soak_seconds, queries_done.load(),
              service_stats.runs_submitted, service_stats.appends_submitted,
              service_stats.appends_coalesced,
              service_stats.snapshots_published);

  bench::BenchJsonWriter writer("soak", smoke);
  writer.AddMetadata("window_seconds", soak_seconds);
  writer.AddMetadata("hardware_threads",
                     static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddMetadata("seed_observations",
                     static_cast<double>(synthetic.data.size() - pool_size));
  const auto add_class = [&writer](const char* name, const ClassStats& s) {
    const std::string prefix(name);
    writer.AddMetric(prefix + "_p50_seconds", s.p50, "seconds");
    writer.AddMetric(prefix + "_p99_seconds", s.p99, "seconds");
    writer.AddMetric(prefix + "_max_seconds", s.max, "seconds");
    writer.AddMetric(prefix + "_count", static_cast<double>(s.count),
                     "count");
  };
  add_class("query", query_stats);
  add_class("append", append_stats);
  add_class("run", run_stats);
  add_class("tick", tick_stats);
  writer.AddMetric("macro_disabled_ns_per_op", disabled_ns, "nanoseconds");
  writer.AddMetric("macro_enabled_ns_per_op", enabled_ns, "nanoseconds");
  writer.AddMetric("runs_submitted",
                   static_cast<double>(service_stats.runs_submitted),
                   "count");
  writer.AddMetric("appends_submitted",
                   static_cast<double>(service_stats.appends_submitted),
                   "count");
  writer.AddMetric("appends_coalesced",
                   static_cast<double>(service_stats.appends_coalesced),
                   "count");
  writer.AddMetric("snapshots_published",
                   static_cast<double>(service_stats.snapshots_published),
                   "count");
  // The full registry dump: service-level queue-wait/execute histograms
  // and queue-depth gauges beside the soak classes, one scrape.
  writer.AddRawSection("registry", registry.RenderJson());
  if (!writer.WriteFile("BENCH_soak.json")) return 1;

  // Chrome/Perfetto trace of the soak window.
  const std::string trace = obs::TraceRecorder::Default().RenderChromeTrace();
  std::FILE* trace_out = std::fopen("BENCH_soak_trace.json", "w");
  if (trace_out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_soak_trace.json\n");
    return 1;
  }
  std::fwrite(trace.data(), 1, trace.size(), trace_out);
  std::fclose(trace_out);
  std::printf("wrote BENCH_soak_trace.json (%zu bytes)\n", trace.size());

  // ---- Smoke gates ----
  if (smoke) {
    // Every class must have actually exercised its path.
    if (query_stats.count == 0 || append_stats.count == 0 ||
        run_stats.count == 0 || tick_stats.count == 0) {
      std::fprintf(stderr,
                   "FAIL: a request class recorded zero requests "
                   "(query %" PRIu64 ", append %" PRIu64 ", run %" PRIu64
                   ", tick %" PRIu64 ")\n",
                   query_stats.count, append_stats.count, run_stats.count,
                   tick_stats.count);
      return 1;
    }
    // The disabled macro hook must stay in low single-digit nanoseconds;
    // 25ns leaves headroom for slow CI machines while still catching an
    // accidental always-on metrics path (~100ns+).
    if (disabled_ns > 25.0) {
      std::fprintf(stderr,
                   "FAIL: disabled-path macro overhead %.1f ns/op "
                   "(budget 25 ns)\n",
                   disabled_ns);
      return 1;
    }
  }
  return 0;
}
