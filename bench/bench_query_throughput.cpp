// Query throughput: lock-free snapshot reads, single- vs multi-threaded.
//
// The paper's KBT signal is consumed at web scale — per-source and
// per-triple reads vastly outnumber recomputations. This bench publishes
// one snapshot of a synthetic cube and replays identical random query
// traffic two ways:
//   point lookups  — a mix of SourceTrust / WebsiteTrust / TripleTruth
//                    (~1/8 deliberate misses), first on one thread, then
//                    on all hardware threads with one SnapshotReader each;
//   top-k          — TopKSources(10) + TopKTriples(10), same two ways.
// Because the steady-state read path takes no lock and writes no shared
// cache line, multi-threaded throughput should scale with reader count;
// the ratio is the headline number. Results land in BENCH_query.json for
// the perf-trend tooling.
//
// Usage: bench_query_throughput [--smoke]  (--smoke: tiny cube for CI)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

namespace {

using namespace kbt;

/// Mixed point-lookup keys: source ids, website ids and triple keys drawn
/// from the snapshot, with ~1/8 misses mixed in so the probe path's miss
/// branch is exercised too.
struct QueryKeys {
  std::vector<uint32_t> sources;
  std::vector<uint32_t> websites;
  std::vector<query::TripleKey> triples;
};

QueryKeys MakeKeys(const query::Snapshot& snapshot, size_t count,
                   uint64_t seed) {
  Rng rng(seed);
  QueryKeys keys;
  keys.sources.reserve(count);
  keys.websites.reserve(count);
  keys.triples.reserve(count);
  const auto all_triples = snapshot.TopKTriples(snapshot.num_triples());
  for (size_t i = 0; i < count; ++i) {
    const bool miss = rng.UniformInt(0, 7) == 0;
    keys.sources.push_back(
        miss ? static_cast<uint32_t>(snapshot.num_sources()) + 7
             : static_cast<uint32_t>(
                   rng.UniformInt(0, static_cast<int>(
                                         snapshot.num_sources()) - 1)));
    keys.websites.push_back(
        miss ? static_cast<uint32_t>(snapshot.num_websites()) + 7
             : static_cast<uint32_t>(
                   rng.UniformInt(0, static_cast<int>(
                                         snapshot.num_websites()) - 1)));
    const query::TripleTruth& t = all_triples[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(all_triples.size()) - 1))];
    keys.triples.push_back(
        query::TripleKey{t.item, miss ? t.value + 100000 : t.value});
  }
  return keys;
}

/// One pass of point lookups over the key set; returns a consumption
/// checksum so the optimizer cannot elide the queries.
double PointLookupPass(const query::Snapshot& snapshot,
                       const QueryKeys& keys) {
  double checksum = 0.0;
  for (size_t i = 0; i < keys.sources.size(); ++i) {
    if (const auto s = snapshot.SourceTrust(keys.sources[i])) {
      checksum += s->kbt;
    }
    if (const auto w = snapshot.WebsiteTrust(keys.websites[i])) {
      checksum += w->kbt;
    }
    if (const auto t = snapshot.TripleTruth(keys.triples[i].item,
                                            keys.triples[i].value)) {
      checksum += t->probability;
    }
  }
  return checksum;
}

double TopKPass(const query::Snapshot& snapshot, size_t rounds) {
  double checksum = 0.0;
  for (size_t i = 0; i < rounds; ++i) {
    for (const query::SourceTrust& s : snapshot.TopKSources(10)) {
      checksum += s.kbt;
    }
    for (const query::TripleTruth& t : snapshot.TopKTriples(10)) {
      checksum += t.probability;
    }
  }
  return checksum;
}

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // ---- Build + publish one snapshot (compute path, untimed) ----
  exp::SyntheticConfig config;
  config.num_sources = smoke ? 40 : 400;
  config.num_extractors = smoke ? 4 : 8;
  config.num_subjects = smoke ? 30 : 300;
  config.num_predicates = smoke ? 5 : 8;
  config.seed = 2015;
  api::Options options;
  options.multilayer.min_source_support = 1;
  options.multilayer.max_iterations = 10;
  auto pipeline = api::PipelineBuilder()
                      .FromSynthetic(config)
                      .WithOptions(options)
                      .Build();
  if (!pipeline.ok()) Die("build", pipeline.status());
  auto report = pipeline->Run();
  if (!report.ok()) Die("run", report.status());
  const auto snapshot = pipeline->PublishSnapshot(*report);

  const int num_threads =
      std::max(2u, std::thread::hardware_concurrency());
  const size_t keys_per_thread = smoke ? 20000 : 200000;
  const size_t topk_rounds = smoke ? 2000 : 20000;

  // Per-thread key sets (thread 0's doubles as the single-thread set), so
  // the multi-threaded pass replays the same per-thread work shape.
  std::vector<QueryKeys> keys;
  keys.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    keys.push_back(MakeKeys(*snapshot, keys_per_thread,
                            900 + static_cast<uint64_t>(t)));
  }
  const size_t lookups_per_pass = keys_per_thread * 3;  // 3 lookups/key.

  // ---- Point lookups, single-threaded ----
  Stopwatch point_single_watch;
  g_sink = PointLookupPass(*snapshot, keys[0]);
  const double point_single_seconds = point_single_watch.ElapsedSeconds();
  const double point_single_rate =
      static_cast<double>(lookups_per_pass) / point_single_seconds;

  // ---- Point lookups, one reader thread per core ----
  // Each thread queries through its own SnapshotReader — the deployment
  // shape: view() is lock-free and refresh-free while nothing publishes.
  // Per-thread sinks (folded into g_sink after the join): the workers
  // must not share a write target, that would be the very contention —
  // and the data race — this read path exists to avoid. A start barrier
  // keeps thread creation/scheduling out of the timed window (the smoke
  // workload is sub-millisecond; spawn latency would swamp it).
  std::vector<double> sinks(static_cast<size_t>(num_threads), 0.0);
  std::vector<std::thread> workers;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&pipeline, &keys, &sinks, &ready, &go, t] {
      query::SnapshotReader reader(pipeline->snapshot_registry());
      ready.fetch_add(1, std::memory_order_release);
      go.wait(false, std::memory_order_acquire);
      sinks[static_cast<size_t>(t)] =
          PointLookupPass(*reader.view(), keys[static_cast<size_t>(t)]);
    });
  }
  while (ready.load(std::memory_order_acquire) < num_threads) {
    std::this_thread::yield();
  }
  Stopwatch point_multi_watch;
  go.store(true, std::memory_order_release);
  go.notify_all();
  for (auto& worker : workers) worker.join();
  const double point_multi_seconds = point_multi_watch.ElapsedSeconds();
  for (const double sink : sinks) g_sink = g_sink + sink;
  const double point_multi_rate =
      static_cast<double>(lookups_per_pass) *
      static_cast<double>(num_threads) / point_multi_seconds;

  // ---- Top-k, single-threaded ----
  Stopwatch topk_single_watch;
  g_sink = TopKPass(*snapshot, topk_rounds);
  const double topk_single_seconds = topk_single_watch.ElapsedSeconds();
  const double topk_single_rate =
      static_cast<double>(topk_rounds * 2) / topk_single_seconds;

  // ---- Top-k, multi-threaded (same start-barrier discipline) ----
  workers.clear();
  ready.store(0);
  go.store(false);
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&pipeline, &sinks, &ready, &go, topk_rounds, t] {
      query::SnapshotReader reader(pipeline->snapshot_registry());
      ready.fetch_add(1, std::memory_order_release);
      go.wait(false, std::memory_order_acquire);
      sinks[static_cast<size_t>(t)] = TopKPass(*reader.view(), topk_rounds);
    });
  }
  while (ready.load(std::memory_order_acquire) < num_threads) {
    std::this_thread::yield();
  }
  Stopwatch topk_multi_watch;
  go.store(true, std::memory_order_release);
  go.notify_all();
  for (auto& worker : workers) worker.join();
  const double topk_multi_seconds = topk_multi_watch.ElapsedSeconds();
  for (const double sink : sinks) g_sink = g_sink + sink;
  const double topk_multi_rate =
      static_cast<double>(topk_rounds * 2) *
      static_cast<double>(num_threads) / topk_multi_seconds;

  const double point_speedup = point_multi_rate / point_single_rate;
  const double topk_speedup = topk_multi_rate / topk_single_rate;

  exp::PrintBanner("Query throughput: lock-free snapshot reads");
  exp::TablePrinter table(
      {"Workload", "Threads", "Ops/s", "Scaling"});
  table.AddRow({"point lookups", "1",
                exp::TablePrinter::Fmt(point_single_rate, 0), "1.00x"});
  table.AddRow({"point lookups", std::to_string(num_threads),
                exp::TablePrinter::Fmt(point_multi_rate, 0),
                exp::TablePrinter::Fmt(point_speedup) + "x"});
  table.AddRow({"top-k (k=10)", "1",
                exp::TablePrinter::Fmt(topk_single_rate, 0), "1.00x"});
  table.AddRow({"top-k (k=10)", std::to_string(num_threads),
                exp::TablePrinter::Fmt(topk_multi_rate, 0),
                exp::TablePrinter::Fmt(topk_speedup) + "x"});
  table.Print();
  std::printf("\nsnapshot: %zu sources, %zu websites, %zu triples\n",
              snapshot->num_sources(), snapshot->num_websites(),
              snapshot->num_triples());

  // ---- Machine-readable output for the perf trajectory ----
  bench::BenchJsonWriter writer("query_throughput", smoke);
  writer.AddMetadata("num_threads", static_cast<double>(num_threads));
  writer.AddMetadata("hardware_threads",
                     static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddMetadata("num_sources",
                     static_cast<double>(snapshot->num_sources()));
  writer.AddMetadata("num_triples",
                     static_cast<double>(snapshot->num_triples()));
  writer.AddMetadata("scaling_gate",
                     std::thread::hardware_concurrency() >= 2
                         ? "enforced"
                         : "skipped (needs >= 2 hardware threads)");
  writer.AddMetric("point_lookups_per_second_single", point_single_rate,
                   "ops_per_second");
  writer.AddMetric("point_lookups_per_second_multi", point_multi_rate,
                   "ops_per_second");
  writer.AddMetric("point_lookup_speedup", point_speedup, "ratio");
  writer.AddMetric("topk_per_second_single", topk_single_rate,
                   "ops_per_second");
  writer.AddMetric("topk_per_second_multi", topk_multi_rate,
                   "ops_per_second");
  writer.AddMetric("topk_speedup", topk_speedup, "ratio");
  if (!writer.WriteFile("BENCH_query.json")) return 1;

  // Concurrent readers must beat one reader, or the lock-free read path
  // regressed (e.g. sneaky shared-state contention). Smoke runs enforce
  // it like a test so CI catches the regression — but only where a second
  // hardware thread exists: on a 1-core box the "multi" pass just
  // interleaves on one core and can only measure, not scale.
  if (smoke && std::thread::hardware_concurrency() < 2) {
    // Say so out loud: a silent pass here reads as "scaling verified".
    std::printf(
        "SKIP: multi-thread scaling gate needs >= 2 hardware threads "
        "(have %u); the multi-reader numbers above measure interleaving, "
        "not scaling\n",
        std::thread::hardware_concurrency());
  } else if (smoke && point_multi_rate <= point_single_rate) {
    std::fprintf(stderr,
                 "FAIL: multi-threaded point lookups (%.0f/s) did not beat "
                 "single-threaded (%.0f/s)\n",
                 point_multi_rate, point_single_rate);
    return 1;
  }
  return 0;
}
