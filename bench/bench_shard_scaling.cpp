// Shard scaling: sharded run + merged-read throughput, 1 -> N shards.
//
// The paper ran KBT at 2.8B-fact scale by fanning the EM passes out over
// MapReduce; kbt/shard.h reproduces that decomposition in-process. This
// bench partitions one synthetic cube into K = 1, 2, 4 shards and, per K:
//   run            — one cold ShardedPipeline::Run scattered across the
//                    executor (observations/second is the headline);
//   merged queries — WebsiteTrust + TripleTruth point lookups against the
//                    MergedSnapshot over the K published per-shard views
//                    (lookups/second; the cross-shard merge tax).
// K = 1 doubles as the parity gate: in --smoke runs the merged report must
// be bit-for-bit identical to a direct unsharded Pipeline::Run, or the
// bench fails like a test. Results land in BENCH_shard.json (one row per
// shard count) for the perf-trend tooling.
//
// Usage: bench_shard_scaling [--smoke]  (--smoke: tiny cube for CI)
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

namespace {

using namespace kbt;

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

volatile double g_sink = 0.0;

struct ShardRow {
  uint32_t num_shards = 1;
  double run_seconds = 0.0;
  double observations_per_second = 0.0;
  double query_seconds = 0.0;
  double lookups_per_second = 0.0;
};

/// One timed pass of merged point lookups: every website plus a triple
/// probe per prediction key, `rounds` times. Returns a checksum so the
/// optimizer cannot elide the queries.
double MergedQueryPass(const query::MergedSnapshot& view,
                       uint32_t num_websites,
                       const std::vector<query::TripleKey>& triples,
                       size_t rounds) {
  double checksum = 0.0;
  for (size_t r = 0; r < rounds; ++r) {
    for (uint32_t w = 0; w < num_websites; ++w) {
      if (const auto trust = view.WebsiteTrust(w)) checksum += trust->kbt;
    }
    for (const query::TripleKey& key : triples) {
      if (const auto truth = view.TripleTruth(key.item, key.value)) {
        checksum += truth->probability;
      }
    }
    for (const query::SourceTrust& top : view.TopKWebsites(10)) {
      checksum += top.kbt;
    }
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  exp::SyntheticConfig config;
  config.num_sources = smoke ? 40 : 400;
  config.num_extractors = smoke ? 4 : 8;
  config.num_subjects = smoke ? 30 : 300;
  config.num_predicates = smoke ? 5 : 8;
  config.seed = 2015;
  const extract::RawDataset cube = exp::GenerateSynthetic(config).data;

  api::Options options;
  options.granularity = api::Granularity::kFinest;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;

  // The unsharded reference run: the K = 1 parity baseline.
  auto direct = api::PipelineBuilder()
                    .FromDataset(cube)
                    .WithOptions(options)
                    .Build();
  if (!direct.ok()) Die("build reference pipeline", direct.status());
  const auto reference = direct->Run();
  if (!reference.ok()) Die("reference run", reference.status());

  const size_t query_rounds = smoke ? 20 : 200;
  std::vector<ShardRow> rows;
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    api::ShardOptions shard_options;
    shard_options.num_shards = num_shards;
    auto sharded = api::ShardedPipeline::Create(cube, options, shard_options);
    if (!sharded.ok()) Die("create sharded pipeline", sharded.status());

    Stopwatch run_watch;
    const auto reports = sharded->Run();
    if (!reports.ok()) Die("sharded run", reports.status());
    ShardRow row;
    row.num_shards = num_shards;
    row.run_seconds = run_watch.ElapsedSeconds();
    row.observations_per_second =
        static_cast<double>(cube.observations.size()) / row.run_seconds;

    // K = 1 must be the unsharded run, bit for bit. Enforced like a test
    // in smoke runs so CI catches any drift in the passthrough.
    if (num_shards == 1) {
      const auto& merged = reports->merged;
      bool identical =
          merged.website_kbt.size() == reference->website_kbt.size() &&
          merged.predictions.size() == reference->predictions.size();
      for (size_t w = 0; identical && w < merged.website_kbt.size(); ++w) {
        identical = merged.website_kbt[w].kbt == reference->website_kbt[w].kbt;
      }
      for (size_t i = 0; identical && i < merged.predictions.size(); ++i) {
        identical = merged.predictions[i].probability ==
                    reference->predictions[i].probability;
      }
      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: K=1 sharded run is not bit-for-bit identical to "
                     "the unsharded run\n");
        if (smoke) return 1;
      }
    }

    sharded->PublishSnapshot(*reports);
    const query::MergedSnapshot view = sharded->MergedView();
    std::vector<query::TripleKey> triples;
    triples.reserve(reports->merged.predictions.size());
    for (const auto& prediction : reports->merged.predictions) {
      triples.push_back(query::TripleKey{prediction.item, prediction.value});
    }
    const size_t lookups_per_round =
        cube.num_websites + triples.size() + 10;

    Stopwatch query_watch;
    g_sink = MergedQueryPass(view, cube.num_websites, triples, query_rounds);
    row.query_seconds = query_watch.ElapsedSeconds();
    row.lookups_per_second =
        static_cast<double>(lookups_per_round * query_rounds) /
        row.query_seconds;
    rows.push_back(row);
  }

  exp::PrintBanner("Shard scaling: run + merged-query throughput");
  exp::TablePrinter table({"Shards", "Run s", "Obs/s", "Query s",
                           "Lookups/s"});
  for (const ShardRow& row : rows) {
    table.AddRow({std::to_string(row.num_shards),
                  exp::TablePrinter::Fmt(row.run_seconds),
                  exp::TablePrinter::Fmt(row.observations_per_second, 0),
                  exp::TablePrinter::Fmt(row.query_seconds),
                  exp::TablePrinter::Fmt(row.lookups_per_second, 0)});
  }
  table.Print();

  // ---- Machine-readable output for the perf trajectory ----
  bench::BenchJsonWriter writer("shard_scaling", smoke);
  writer.AddMetadata("hardware_threads",
                     static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddMetadata("num_observations",
                     static_cast<double>(cube.observations.size()));
  writer.AddMetadata("num_websites",
                     static_cast<double>(cube.num_websites));
  if (!rows.empty()) {
    // Headline trend numbers: single-shard baseline and the widest fanout.
    const ShardRow& last = rows.back();
    writer.AddMetric("run_seconds_max_shards", last.run_seconds, "seconds");
    writer.AddMetric("observations_per_second_max_shards",
                     last.observations_per_second, "ops_per_second");
    writer.AddMetric("merged_lookups_per_second_max_shards",
                     last.lookups_per_second, "ops_per_second");
  }
  std::string rows_json = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& row = rows[i];
    rows_json += i == 0 ? "\n" : ",\n";
    rows_json += "    {\"num_shards\": " +
                 bench::JsonNumber(static_cast<double>(row.num_shards)) +
                 ", \"run_seconds\": " + bench::JsonNumber(row.run_seconds) +
                 ", \"observations_per_second\": " +
                 bench::JsonNumber(row.observations_per_second) +
                 ", \"query_seconds\": " +
                 bench::JsonNumber(row.query_seconds) +
                 ", \"merged_lookups_per_second\": " +
                 bench::JsonNumber(row.lookups_per_second) + "}";
  }
  rows_json += "\n  ]";
  writer.AddRawSection("rows", rows_json);
  return writer.WriteFile("BENCH_shard.json") ? 0 : 1;
}
