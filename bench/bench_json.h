#ifndef KBT_BENCH_BENCH_JSON_H_
#define KBT_BENCH_BENCH_JSON_H_

/// Shared machine-readable output for the bench suite. Every bench_* binary
/// emits one BENCH_<name>.json through this writer so the perf-trend
/// tooling parses a single envelope:
///
///   {
///     "bench": "<name>",
///     "smoke": true|false,
///     "schema_version": 1,
///     "metadata": { "<key>": <string|number|bool>, ... },
///     "metrics": [ {"name": "...", "value": <number>, "unit": "..."}, ... ]
///     [, "<section>": <verbatim JSON>]
///   }
///
/// `metrics` carries the numbers a trend dashboard plots (rates, seconds,
/// speedups, quantiles); `metadata` carries the workload shape that makes
/// them comparable (threads, corpus size, gate status). Benches with
/// richer structure (per-point curves, tables) attach it as a raw section
/// — the envelope stays uniform, the payload stays free-form.

#include <cstdio>
#include <string>
#include <vector>

namespace kbt::bench {

/// JSON string escaping for keys and string values.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic number formatting shared by every emitted value: integral
/// doubles print without exponent or trailing zeros, everything else as
/// shortest round-trippable-enough %.9g (matches kbt::obs renderers).
inline std::string JsonNumber(double value) {
  char buf[64];
  const double truncated = static_cast<double>(static_cast<long long>(value));
  if (value == truncated && value < 9.007199254740992e15 &&
      value > -9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return std::string(buf);
}

/// Accumulates one bench result envelope and writes it to disk.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench_name, bool smoke)
      : bench_name_(std::move(bench_name)), smoke_(smoke) {}

  /// Workload-shape context (threads, sizes, gate status...). Insertion
  /// order is preserved in the output.
  void AddMetadata(const std::string& key, const std::string& value) {
    metadata_.push_back({key, "\"" + JsonEscape(value) + "\""});
  }
  void AddMetadata(const std::string& key, const char* value) {
    AddMetadata(key, std::string(value));
  }
  void AddMetadata(const std::string& key, double value) {
    metadata_.push_back({key, JsonNumber(value)});
  }
  void AddMetadata(const std::string& key, bool value) {
    metadata_.push_back({key, value ? "true" : "false"});
  }

  /// One plottable number. `unit` follows the metric naming scheme's unit
  /// vocabulary: "seconds", "bytes", "ops_per_second", "ratio", "count".
  void AddMetric(const std::string& name, double value,
                 const std::string& unit) {
    metrics_.push_back({name, value, unit});
  }

  /// Attaches `raw_json` (a complete JSON value) under `key` at the top
  /// level, for bench-specific structure the flat metric list cannot hold.
  void AddRawSection(const std::string& key, const std::string& raw_json) {
    sections_.push_back({key, raw_json});
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + JsonEscape(bench_name_) + "\",\n";
    out += std::string("  \"smoke\": ") + (smoke_ ? "true" : "false") + ",\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"metadata\": {";
    for (size_t i = 0; i < metadata_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    \"" + JsonEscape(metadata_[i].key) +
             "\": " + metadata_[i].rendered;
    }
    out += metadata_.empty() ? "},\n" : "\n  },\n";
    out += "  \"metrics\": [";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": \"" + JsonEscape(metrics_[i].name) +
             "\", \"value\": " + JsonNumber(metrics_[i].value) +
             ", \"unit\": \"" + JsonEscape(metrics_[i].unit) + "\"}";
    }
    out += metrics_.empty() ? "]" : "\n  ]";
    for (const RawSection& section : sections_) {
      out += ",\n  \"" + JsonEscape(section.key) + "\": " + section.raw_json;
    }
    out += "\n}\n";
    return out;
  }

  /// Writes the envelope to `path` and reports it on stdout; returns false
  /// (with a stderr diagnostic) when the file cannot be written, so benches
  /// can `return writer.WriteFile(...) ? 0 : 1;`.
  bool WriteFile(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), out);
    const bool ok = written == json.size() && std::fclose(out) == 0;
    if (ok) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
    }
    return ok;
  }

 private:
  struct Metadata {
    std::string key;
    std::string rendered;  // pre-rendered JSON value
  };
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };
  struct RawSection {
    std::string key;
    std::string raw_json;
  };

  std::string bench_name_;
  bool smoke_;
  std::vector<Metadata> metadata_;
  std::vector<Metric> metrics_;
  std::vector<RawSection> sections_;
};

}  // namespace kbt::bench

#endif  // KBT_BENCH_BENCH_JSON_H_
