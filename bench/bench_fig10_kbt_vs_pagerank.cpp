// Reproduces Figure 10 and the Section 5.4.1 analyses: KBT vs PageRank are
// near-orthogonal signals; tail specialist sites reach high KBT despite low
// PageRank, while popular gossip sites have top PageRank but bottom-half
// KBT.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "corpus/link_graph.h"
#include "dataflow/parallel.h"
#include "exp/kv_sim.h"
#include "exp/table_printer.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "pagerank/pagerank.h"
#include "core/kbt_score.h"
#include "core/multilayer_model.h"

int main() {
  using namespace kbt;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }

  // ---- KBT per website ----
  const auto assignment = granularity::FinestAssignment(kv->data);
  const auto matrix = extract::CompiledMatrix::Build(kv->data, assignment);
  if (!matrix.ok()) return 1;
  core::MultiLayerConfig config;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(
      *matrix, config, {}, &dataflow::DefaultExecutor());
  if (!result.ok()) return 1;
  const auto kbt_scores = core::ComputeWebsiteKbt(
      *matrix, *result, static_cast<uint32_t>(kv->corpus.num_websites()));

  // ---- PageRank over the hyperlink graph ----
  Rng rng(1234);
  const auto graph =
      corpus::LinkGraph::Generate(kv->corpus.websites(), 8.0, rng);
  const auto pr = pagerank::ComputePageRank(graph);
  if (!pr.ok()) return 1;
  const auto pr_norm = pagerank::NormalizeToUnitInterval(*pr);

  // Scatter sample restricted to scored sites.
  std::vector<double> kbt_values;
  std::vector<double> pr_values;
  std::vector<uint32_t> site_of_sample;
  for (uint32_t w = 0; w < kv->corpus.num_websites(); ++w) {
    if (!kbt_scores[w].HasScore(5.0)) continue;
    kbt_values.push_back(kbt_scores[w].kbt);
    pr_values.push_back(pr_norm[w]);
    site_of_sample.push_back(w);
  }

  exp::PrintBanner("Figure 10: KBT vs PageRank (density grid, % of sites)");
  // 10x10 density grid, PageRank rows (top = high), KBT columns.
  std::vector<std::vector<double>> grid(10, std::vector<double>(10, 0.0));
  for (size_t i = 0; i < kbt_values.size(); ++i) {
    const int col = std::min(9, static_cast<int>(kbt_values[i] * 10));
    const int row = std::min(9, static_cast<int>(pr_values[i] * 10));
    grid[static_cast<size_t>(9 - row)][static_cast<size_t>(col)] += 1.0;
  }
  exp::TablePrinter table({"PR \\ KBT", "0.0", "0.1", "0.2", "0.3", "0.4",
                           "0.5", "0.6", "0.7", "0.8", "0.9"});
  for (int row = 0; row < 10; ++row) {
    std::vector<std::string> cells{
        exp::TablePrinter::Fmt(0.9 - 0.1 * row, 1)};
    for (int col = 0; col < 10; ++col) {
      const double pct = 100.0 * grid[static_cast<size_t>(row)]
                                     [static_cast<size_t>(col)] /
                         std::max<size_t>(1, kbt_values.size());
      cells.push_back(pct == 0.0 ? "." : exp::TablePrinter::Fmt(pct, 1));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();

  const double corr = pagerank::PearsonCorrelation(kbt_values, pr_values);
  std::printf("\nPearson corr(KBT, PageRank) = %.3f over %zu scored sites "
              "(paper: 'almost orthogonal').\n",
              corr, kbt_values.size());

  // ---- Section 5.4.1 analyses ----
  const auto pr_ranks = pagerank::DescendingRanks(pr_norm);
  const auto kbt_ranks = pagerank::DescendingRanks(kbt_values);

  // Gossip sites: high PageRank, low KBT.
  size_t gossip = 0;
  size_t gossip_top_pr = 0;
  size_t gossip_bottom_kbt = 0;
  // Map site -> rank among scored KBT values.
  std::vector<double> kbt_by_site(kv->corpus.num_websites(), -1.0);
  for (size_t i = 0; i < site_of_sample.size(); ++i) {
    kbt_by_site[site_of_sample[i]] = kbt_values[i];
  }
  std::vector<size_t> scored_rank(site_of_sample.size());
  for (size_t i = 0; i < kbt_ranks.size(); ++i) {
    scored_rank[i] = kbt_ranks[i];
  }
  const size_t n_sites = kv->corpus.num_websites();
  const size_t n_scored = kbt_values.size();
  for (uint32_t w = 0; w < n_sites; ++w) {
    if (kv->corpus.website(w).category != corpus::SourceCategory::kGossip) {
      continue;
    }
    ++gossip;
    if (pr_ranks[w] < n_sites * 15 / 100) ++gossip_top_pr;
  }
  for (size_t i = 0; i < site_of_sample.size(); ++i) {
    if (kv->corpus.website(site_of_sample[i]).category !=
        corpus::SourceCategory::kGossip) {
      continue;
    }
    if (kbt_ranks[i] >= n_scored / 2) ++gossip_bottom_kbt;
  }

  // Tail specialists: high KBT despite low PageRank.
  size_t high_kbt = 0;
  size_t high_kbt_low_pr = 0;
  for (size_t i = 0; i < site_of_sample.size(); ++i) {
    if (kbt_values[i] <= 0.9) continue;
    ++high_kbt;
    if (pr_values[i] < 0.5) ++high_kbt_low_pr;
  }

  std::printf(
      "\nGossip sites (%zu): %zu in the top 15%% by PageRank; %zu of their\n"
      "scored KBTs fall in the bottom half (paper: 14/15 top PageRank, all\n"
      "bottom-half KBT).\n",
      gossip, gossip_top_pr, gossip_bottom_kbt);
  std::printf(
      "High-KBT sites (KBT > 0.9): %zu, of which %zu have PageRank below\n"
      "0.5 (paper: only 20 of 85 trustworthy sites had PageRank over 0.5).\n",
      high_kbt, high_kbt_low_pr);

  bench::BenchJsonWriter writer("fig10_kbt_vs_pagerank", false);
  writer.AddMetadata("websites", static_cast<double>(n_sites));
  writer.AddMetadata("scored_websites", static_cast<double>(n_scored));
  writer.AddMetric("gossip_sites", static_cast<double>(gossip), "count");
  writer.AddMetric("gossip_top15pct_pagerank",
                   static_cast<double>(gossip_top_pr), "count");
  writer.AddMetric("gossip_bottom_half_kbt",
                   static_cast<double>(gossip_bottom_kbt), "count");
  writer.AddMetric("high_kbt_sites", static_cast<double>(high_kbt), "count");
  writer.AddMetric("high_kbt_low_pagerank",
                   static_cast<double>(high_kbt_low_pr), "count");
  return writer.WriteFile("BENCH_fig10.json") ? 0 : 1;
}
