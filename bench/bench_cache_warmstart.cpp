// Warm-start benchmark of the persistent compiled-artifact cache.
//
// The KBT setting re-analyzes a mostly-fixed extraction cube session after
// session; before the disk cache, every new process paid the full
// granularity + compile cost again. With kbt::cache, the first session
// persists its CompiledMatrix + GroupAssignment (content-addressed by
// io::DatasetFingerprint x compile options) and later sessions load them:
//
//   cold_compile_seconds  — Granularity + Compile stages of a cold run;
//   save_seconds          — encoding + atomic write of the artifacts;
//   load_seconds          — read + decode + verify (CRC, fingerprints,
//                           assignment replay) into a fresh pipeline;
//   warm_compile_seconds  — Granularity + Compile stages of the run after
//                           the load (the residual: stages see a full
//                           cache and do no compilation work).
//
// The bench also asserts the loaded artifacts are bit-for-bit
// interchangeable: the warm report must equal the cold one exactly.
// Results land in BENCH_cache.json for the perf-trend tooling.
//
// Usage: bench_cache_warmstart [--smoke]   (--smoke: tiny cube for CI)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

namespace {

using namespace kbt;

double StageSeconds(const api::TrustReport& report, const char* name) {
  for (const auto& [stage, seconds] : report.stage_seconds) {
    if (stage == name) return seconds;
  }
  return 0.0;
}

bool ReportsEqual(const api::TrustReport& a, const api::TrustReport& b) {
  return a.inference.slot_value_prob == b.inference.slot_value_prob &&
         a.inference.slot_correct_prob == b.inference.slot_correct_prob &&
         a.inference.source_accuracy == b.inference.source_accuracy &&
         a.inference.extractor_q == b.inference.extractor_q &&
         a.counts.num_slots == b.counts.num_slots &&
         a.counts.num_sources == b.counts.num_sources;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // A cube whose compilation visibly dominates a decode pass.
  exp::SyntheticConfig config;
  config.num_sources = smoke ? 25 : 400;
  config.num_extractors = smoke ? 4 : 8;
  config.num_subjects = smoke ? 20 : 60;
  config.num_predicates = smoke ? 5 : 8;
  config.seed = 2015;
  const exp::SyntheticData synthetic = exp::GenerateSynthetic(config);

  api::Options options;
  options.granularity = api::Granularity::kFinest;
  options.multilayer.max_iterations = 1;  // Compile costs, not EM, matter.

  const std::string dir =
      (std::filesystem::temp_directory_path() / "kbt_bench_cache_store")
          .string();
  std::filesystem::remove_all(dir);

  // ---- Cold session: compile from the raw cube, persist on the side ----
  auto cold = api::PipelineBuilder()
                  .FromDataset(synthetic.data)
                  .WithOptions(options)
                  .Build();
  if (!cold.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  if (const Status s = cold->EnableDiskCache(dir); !s.ok()) {
    std::fprintf(stderr, "EnableDiskCache failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  const auto cold_report = cold->Run();  // compiles AND auto-saves
  if (!cold_report.ok()) {
    std::fprintf(stderr, "cold run failed: %s\n",
                 cold_report.status().ToString().c_str());
    return 1;
  }
  const double cold_compile = StageSeconds(*cold_report, "Granularity") +
                              StageSeconds(*cold_report, "Compile");

  // Explicit re-save, timed in isolation (encode + write + rename).
  Stopwatch save_watch;
  if (const Status s = cold->SaveCompiledArtifacts(); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double save_seconds = save_watch.ElapsedSeconds();

  // ---- Warm session: a fresh pipeline over the same content ----
  auto warm = api::PipelineBuilder()
                  .FromDataset(synthetic.data)
                  .WithOptions(options)
                  .Build();
  if (!warm.ok()) {
    std::fprintf(stderr, "warm build failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  if (const Status s = warm->EnableDiskCache(dir); !s.ok()) {
    std::fprintf(stderr, "warm EnableDiskCache failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  Stopwatch load_watch;
  if (const Status s = warm->LoadCompiledArtifacts(); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double load_seconds = load_watch.ElapsedSeconds();
  const auto warm_report = warm->Run();
  if (!warm_report.ok()) {
    std::fprintf(stderr, "warm run failed: %s\n",
                 warm_report.status().ToString().c_str());
    return 1;
  }
  const double warm_compile = StageSeconds(*warm_report, "Granularity") +
                              StageSeconds(*warm_report, "Compile");

  // Loaded artifacts must be interchangeable with compiled ones.
  if (!ReportsEqual(*cold_report, *warm_report)) {
    std::fprintf(stderr,
                 "warm report differs from cold report — loaded artifacts "
                 "are not bit-for-bit interchangeable\n");
    return 1;
  }

  uintmax_t artifact_bytes = 0;
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    artifact_bytes += file.file_size();
  }
  const double warm_total = load_seconds + warm_compile;
  const double speedup = warm_total > 0 ? cold_compile / warm_total : 0.0;

  exp::PrintBanner("Persistent cache: warm start vs cold compile");
  std::printf("cube: %zu observations -> %zu slots, %u sources, %u extractor "
              "groups; artifact file: %.1f KiB\n",
              synthetic.data.size(), cold_report->counts.num_slots,
              cold_report->counts.num_sources,
              cold_report->counts.num_extractor_groups,
              static_cast<double>(artifact_bytes) / 1024.0);
  exp::TablePrinter table({"Path", "Seconds"});
  table.AddRow({"cold granularity+compile",
                exp::TablePrinter::Fmt(cold_compile, 4)});
  table.AddRow({"save (encode+write)",
                exp::TablePrinter::Fmt(save_seconds, 4)});
  table.AddRow({"load (read+decode+verify)",
                exp::TablePrinter::Fmt(load_seconds, 4)});
  table.AddRow({"warm granularity+compile",
                exp::TablePrinter::Fmt(warm_compile, 4)});
  table.Print();
  std::printf("\nwarm start %.1fx faster than the cold compile it replaces "
              "(load %.3f ms + residual %.3f ms vs %.3f ms)\n",
              speedup, load_seconds * 1e3, warm_compile * 1e3,
              cold_compile * 1e3);

  // ---- Machine-readable output for the perf trajectory ----
  bench::BenchJsonWriter writer("cache_warmstart", smoke);
  writer.AddMetadata("observations",
                     static_cast<double>(synthetic.data.size()));
  writer.AddMetadata("slots",
                     static_cast<double>(cold_report->counts.num_slots));
  writer.AddMetric("artifact_bytes", static_cast<double>(artifact_bytes),
                   "bytes");
  writer.AddMetric("cold_compile_seconds", cold_compile, "seconds");
  writer.AddMetric("save_seconds", save_seconds, "seconds");
  writer.AddMetric("load_seconds", load_seconds, "seconds");
  writer.AddMetric("warm_compile_seconds", warm_compile, "seconds");
  writer.AddMetric("speedup", speedup, "ratio");
  const bool wrote = writer.WriteFile("BENCH_cache.json");
  std::filesystem::remove_all(dir);
  return wrote ? 0 : 1;
}
