// Streaming ingestion throughput: the kbt::stream tick loop.
//
// The batch pipeline answers "score this cube"; kbt::stream answers "keep
// the scores current while the cube grows". This bench replays a generated
// extraction cube as a feed of timed batches and measures what the
// continuous path costs:
//   ticks_per_second          — full tick cycles (poll + append + EM +
//                               publish) the engine sustains;
//   feed_to_queryable_seconds — latency from a batch landing in the feed
//                               to its generation being served by the
//                               lock-free read path (per-tick, so p50/max
//                               are worst-observed, not averages);
//   decay overhead            — the same replay with exponential
//                               time-decay on (per-slot weight recompute +
//                               weighted accumulators) vs off.
// Results land in BENCH_stream.json for the perf-trend tooling.
//
// Usage: bench_stream_ingest [--smoke]   (--smoke: tiny cube for CI)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "kbt/kbt.h"
#include "support/corpus_fixture.h"

namespace {

using namespace kbt;

struct ReplayResult {
  double total_seconds = 0.0;
  std::vector<double> tick_seconds;
  size_t observations = 0;
  size_t generations = 0;
};

/// Replays `batches` through a fresh engine over a pipeline seeded with
/// `seed`, one tick per batch, timing each tick end to end (push -> result
/// queryable through the registry's read path).
ReplayResult Replay(const extract::RawDataset& seed,
                    const std::vector<std::vector<extract::RawObservation>>&
                        batches,
                    const api::Options& options,
                    double decay_half_life) {
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(seed)
                      .WithOptions(options)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline build failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  auto feed = std::make_shared<stream::QueueFeed>();
  stream::StreamOptions stream_options;
  stream_options.decay_half_life = decay_half_life;
  auto engine = stream::StreamEngine::Create(&*pipeline, feed,
                                             stream_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine create failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  query::SnapshotReader reader((*engine)->snapshot_registry());

  ReplayResult result;
  Stopwatch total;
  for (size_t b = 0; b < batches.size(); ++b) {
    const double now = static_cast<double>(b + 1);
    std::vector<stream::TimedObservation> timed;
    timed.reserve(batches[b].size());
    for (const extract::RawObservation& obs : batches[b]) {
      timed.push_back(stream::TimedObservation{obs, now});
    }
    result.observations += timed.size();

    Stopwatch watch;
    feed->PushBatch(std::move(timed));
    const auto tick = (*engine)->Tick(now);
    if (!tick.ok()) {
      std::fprintf(stderr, "tick %zu failed: %s\n", b,
                   tick.status().ToString().c_str());
      std::exit(1);
    }
    // Queryable = the lock-free reader serves the new generation.
    const query::Snapshot* view = reader.view();
    if (view == nullptr || view->info().sequence != tick->sequence) {
      std::fprintf(stderr, "tick %zu not visible through the reader\n", b);
      std::exit(1);
    }
    result.tick_seconds.push_back(watch.ElapsedSeconds());
  }
  result.total_seconds = total.ElapsedSeconds();
  result.generations = (*engine)->stats().generations_published;
  return result;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1));
  return values[index];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  kbt::testing::CorpusFixtureOptions corpus_options;
  corpus_options.num_subjects = smoke ? 60 : 400;
  corpus_options.num_websites = smoke ? 20 : 120;
  corpus_options.num_extractors = smoke ? 3 : 8;
  corpus_options.max_pages_per_site = smoke ? 4 : 10;
  auto fixture = kbt::testing::MakeCorpusFixture(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }

  const size_t num_ticks = smoke ? 4 : 24;
  auto batches =
      kbt::testing::SliceObservations(fixture->dataset, num_ticks + 1);
  extract::RawDataset seed = std::move(fixture->dataset);
  seed.observations = std::move(batches.front());
  batches.erase(batches.begin());

  api::Options options;
  options.granularity = api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;

  std::printf("seed cube: %zu observations; replaying %zu ticks of ~%zu "
              "observations each\n",
              seed.size(), batches.size(),
              batches.empty() ? 0 : batches[0].size());

  const ReplayResult off = Replay(seed, batches, options, 0.0);
  const ReplayResult on = Replay(seed, batches, options, 60.0);

  const double ticks_per_second =
      static_cast<double>(off.tick_seconds.size()) / off.total_seconds;
  const double mean_latency =
      off.total_seconds / static_cast<double>(off.tick_seconds.size());
  const double p50_latency = Percentile(off.tick_seconds, 0.5);
  const double max_latency = Percentile(off.tick_seconds, 1.0);
  const double decay_overhead = on.total_seconds / off.total_seconds;

  exp::PrintBanner("Streaming ingestion: tick loop throughput");
  exp::TablePrinter table({"Mode", "Ticks", "Total (ms)", "Mean tick (ms)",
                           "p50 (ms)", "Max (ms)"});
  table.AddRow({"decay off", std::to_string(off.tick_seconds.size()),
                exp::TablePrinter::Fmt(off.total_seconds * 1e3),
                exp::TablePrinter::Fmt(mean_latency * 1e3),
                exp::TablePrinter::Fmt(p50_latency * 1e3),
                exp::TablePrinter::Fmt(max_latency * 1e3)});
  table.AddRow({"decay on", std::to_string(on.tick_seconds.size()),
                exp::TablePrinter::Fmt(on.total_seconds * 1e3),
                exp::TablePrinter::Fmt(on.total_seconds * 1e3 /
                                       static_cast<double>(
                                           on.tick_seconds.size())),
                exp::TablePrinter::Fmt(Percentile(on.tick_seconds, 0.5) *
                                       1e3),
                exp::TablePrinter::Fmt(Percentile(on.tick_seconds, 1.0) *
                                       1e3)});
  table.Print();
  std::printf("\n%.1f ticks/sec, %zu observations streamed into %zu "
              "generations; decay costs %.2fx the undecayed loop\n",
              ticks_per_second, off.observations, off.generations,
              decay_overhead);

  // ---- Machine-readable output for the perf trajectory ----
  bench::BenchJsonWriter writer("stream_ingest", smoke);
  writer.AddMetadata("seed_observations", static_cast<double>(seed.size()));
  writer.AddMetadata("ticks", static_cast<double>(off.tick_seconds.size()));
  writer.AddMetadata("observations_streamed",
                     static_cast<double>(off.observations));
  writer.AddMetadata("generations_published",
                     static_cast<double>(off.generations));
  writer.AddMetric("ticks_per_second", ticks_per_second, "ops_per_second");
  writer.AddMetric("feed_to_queryable_mean_seconds", mean_latency,
                   "seconds");
  writer.AddMetric("feed_to_queryable_p50_seconds", p50_latency, "seconds");
  writer.AddMetric("feed_to_queryable_max_seconds", max_latency, "seconds");
  writer.AddMetric("decay_off_total_seconds", off.total_seconds, "seconds");
  writer.AddMetric("decay_on_total_seconds", on.total_seconds, "seconds");
  writer.AddMetric("decay_overhead", decay_overhead, "ratio");
  return writer.WriteFile("BENCH_stream.json") ? 0 : 1;
}
