// Reproduces Figure 7: the distribution of KBT scores across websites with
// at least 5 (expected) correctly extracted triples, read straight off a
// facade TrustReport. The paper observes a peak around 0.8 with 52% of
// websites above 0.8.
#include <cstdio>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

int main() {
  using namespace kbt;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed: %s\n",
                 kv.status().ToString().c_str());
    return 1;
  }
  api::Options options;
  options.granularity = api::Granularity::kFinest;
  options.multilayer.num_false_override = 10;
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(&kv->data)
                      .WithOptions(options)
                      .WithExecutor(&dataflow::DefaultExecutor())
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  const auto report = pipeline->Run();
  if (!report.ok()) return 1;
  const auto& scores = report->website_kbt;

  Histogram hist = Histogram::UniformProbabilityBuckets(20);
  size_t scored = 0;
  size_t above_08 = 0;
  for (const auto& s : scores) {
    if (!s.HasScore(5.0)) continue;
    ++scored;
    hist.Add(s.kbt);
    if (s.kbt > 0.8) ++above_08;
  }

  exp::PrintBanner("Figure 7: distribution of website KBT (evidence >= 5)");
  exp::TablePrinter table({"KBT bucket", "%websites"});
  for (size_t b = 0; b < hist.num_buckets(); ++b) {
    char label[32];
    std::snprintf(label, sizeof(label), "[%.2f,%.2f)", hist.bucket_lower(b),
                  0.05 * static_cast<double>(b + 1));
    table.AddRow({label, exp::TablePrinter::Fmt(100.0 * hist.Fraction(b), 1)});
  }
  table.Print();
  std::printf(
      "\n%zu of %zu websites have >= 5 expected correctly-extracted triples\n"
      "(paper: 5.6M of 26M sites); %.0f%% of them have KBT > 0.8 (paper: "
      "52%%).\n",
      scored, scores.size(),
      scored > 0 ? 100.0 * static_cast<double>(above_08) /
                       static_cast<double>(scored)
                 : 0.0);

  bench::BenchJsonWriter writer("fig7_kbt_distribution", false);
  writer.AddMetadata("websites", static_cast<double>(scores.size()));
  writer.AddMetric("scored_websites", static_cast<double>(scored), "count");
  writer.AddMetric("kbt_above_08_fraction",
                   scored > 0 ? static_cast<double>(above_08) /
                                    static_cast<double>(scored)
                              : 0.0,
                   "ratio");
  return writer.WriteFile("BENCH_fig7.json") ? 0 : 1;
}
