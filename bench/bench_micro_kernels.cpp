// google-benchmark microbenchmarks of the inference kernels: vote
// computation, sigmoid/log-sum-exp, the SoA EM kernels (src/kernels/) on
// both kinds with bytes-processed GB/s, matrix compilation, one EM
// iteration, and a PageRank sweep. These are the building blocks whose
// cost the Table 7 stage timings aggregate.
#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/math.h"
#include "corpus/link_graph.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "kernels/kernels.h"
#include "pagerank/pagerank.h"
#include "core/multilayer_model.h"

namespace {

using namespace kbt;

void BM_Sigmoid(benchmark::State& state) {
  double x = -8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sigmoid(x));
    x += 0.001;
    if (x > 8.0) x = -8.0;
  }
}
BENCHMARK(BM_Sigmoid);

void BM_VoteComputation(benchmark::State& state) {
  double r = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeVotes(r, 0.2 * r, 1.0));
    r += 1e-4;
    if (r > 0.95) r = 0.1;
  }
}
BENCHMARK(BM_VoteComputation);

void BM_LogSumExp(benchmark::State& state) {
  std::vector<double> xs(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i % 37) - 18.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogSumExp(xs));
  }
}
BENCHMARK(BM_LogSumExp)->Arg(4)->Arg(64)->Arg(1024);

// ---- SoA EM kernels: both kinds, bytes-processed so the reporter prints
// GB/s next to each timing (the bytes are the streams the kernel actually
// touches: indices, gathered tables, weight/posterior reads, staged
// writes — matching the bytes-touched model in bench_table7_efficiency).

struct KernelStreams {
  std::vector<uint32_t> idx;
  std::vector<double> w;
  std::vector<double> p;
  std::vector<double> mask;
  std::vector<double> table;
  std::vector<double> out;
  std::vector<float> conf;
  std::vector<uint32_t> group;
  std::vector<double> net;
};

KernelStreams& SharedStreams() {
  static KernelStreams streams = [] {
    constexpr size_t kN = 1 << 18;
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    KernelStreams s;
    s.idx.resize(kN);
    s.w.resize(kN);
    s.p.resize(kN);
    s.mask.resize(kN);
    s.table.resize(kN);
    s.out.resize(kN);
    s.conf.resize(kN);
    s.group.resize(kN);
    s.net.resize(kN);
    for (size_t i = 0; i < kN; ++i) {
      s.idx[i] = static_cast<uint32_t>(rng() % kN);
      s.w[i] = uni(rng);
      s.p[i] = ClampProbability(uni(rng));
      s.mask[i] = rng() % 4 ? 1.0 : 0.0;
      s.table[i] = (uni(rng) - 0.5) * 20.0;
      s.conf[i] = static_cast<float>(uni(rng));
      s.group[i] = static_cast<uint32_t>(rng() % 64);
      s.net[i] = (uni(rng) - 0.5) * 10.0;
    }
    return s;
  }();
  return streams;
}

kernels::Kind KindArg(const benchmark::State& state) {
  return state.range(1) == 0 ? kernels::Kind::kScalarReference
                             : kernels::Kind::kVectorized;
}

void BM_TallyIndexed(benchmark::State& state) {
  const KernelStreams& s = SharedStreams();
  const size_t n = static_cast<size_t>(state.range(0));
  const kernels::Kind kind = KindArg(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::TallyIndexed(kind, s.idx.data(), n, s.w.data(), s.p.data()));
  }
  // idx 4 + gathered w 8 + gathered p 8 per element.
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * (4 + 8 + 8));
  state.SetLabel(std::string(kernels::KindName(kind)));
}
BENCHMARK(BM_TallyIndexed)
    ->ArgsProduct({{4096, 262144}, {0, 1}});

void BM_TallyEdges(benchmark::State& state) {
  const KernelStreams& s = SharedStreams();
  const size_t n = static_cast<size_t>(state.range(0));
  const kernels::Kind kind = KindArg(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::TallyEdges(
        kind, s.idx.data(), n, s.conf.data(), s.group.data(), s.p.data()));
  }
  // edge idx 4 + conf 4 + slot idx 4 + gathered correctness 8 per element.
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * (4 + 4 + 4 + 8));
  state.SetLabel(std::string(kernels::KindName(kind)));
}
BENCHMARK(BM_TallyEdges)
    ->ArgsProduct({{4096, 262144}, {0, 1}});

void BM_StageVotesMasked(benchmark::State& state) {
  KernelStreams& s = SharedStreams();
  const size_t n = static_cast<size_t>(state.range(0));
  const kernels::Kind kind = KindArg(state);
  for (auto _ : state) {
    kernels::StageVotesMasked(kind, s.mask.data(), s.w.data(), s.idx.data(),
                              s.table.data(), 0, n, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
    benchmark::ClobberMemory();
  }
  // mask 8 + weight 8 + idx 4 + gathered table 8 + staged write 8.
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * (8 + 8 + 4 + 8 + 8));
  state.SetLabel(std::string(kernels::KindName(kind)));
}
BENCHMARK(BM_StageVotesMasked)
    ->ArgsProduct({{4096, 262144}, {0, 1}});

void BM_StageEdgeTerms(benchmark::State& state) {
  KernelStreams& s = SharedStreams();
  const size_t n = static_cast<size_t>(state.range(0));
  const kernels::Kind kind = KindArg(state);
  for (auto _ : state) {
    kernels::StageEdgeTerms(kind, s.conf.data(), s.group.data(), s.net.data(),
                            0, n, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
    benchmark::ClobberMemory();
  }
  // conf 4 + group 4 + gathered net 8 + term write 8.
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * (4 + 4 + 8 + 8));
  state.SetLabel(std::string(kernels::KindName(kind)));
}
BENCHMARK(BM_StageEdgeTerms)
    ->ArgsProduct({{4096, 262144}, {0, 1}});

exp::SyntheticData& SharedSynthetic() {
  static exp::SyntheticData data = [] {
    exp::SyntheticConfig config;
    config.num_sources = 50;
    config.num_subjects = 40;
    config.num_predicates = 5;
    config.num_extractors = 10;
    return exp::GenerateSynthetic(config);
  }();
  return data;
}

void BM_CompileMatrix(benchmark::State& state) {
  const auto& synthetic = SharedSynthetic();
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  for (auto _ : state) {
    auto matrix = extract::CompiledMatrix::Build(synthetic.data, assignment);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(synthetic.data.size()));
}
BENCHMARK(BM_CompileMatrix);

void BM_MultiLayerIteration(benchmark::State& state) {
  const auto& synthetic = SharedSynthetic();
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  const auto matrix =
      extract::CompiledMatrix::Build(synthetic.data, assignment);
  core::MultiLayerConfig config;
  config.max_iterations = static_cast<int>(state.range(0));
  config.convergence_tol = 0.0;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  for (auto _ : state) {
    auto result = core::MultiLayerModel::Run(*matrix, config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(matrix->num_slots()) *
                          state.range(0));
}
BENCHMARK(BM_MultiLayerIteration)->Arg(1)->Arg(5);

void BM_SplitAndMerge(benchmark::State& state) {
  const auto& synthetic = SharedSynthetic();
  granularity::SplitMergeOptions source_options;
  source_options.min_size = 3;
  source_options.max_size = 50;
  granularity::SplitMergeOptions extractor_options = source_options;
  for (auto _ : state) {
    auto assignment = granularity::SplitMergeAssignment(
        synthetic.data, source_options, extractor_options);
    benchmark::DoNotOptimize(assignment);
  }
}
BENCHMARK(BM_SplitAndMerge);

void BM_PageRank(benchmark::State& state) {
  std::vector<corpus::Website> sites(
      static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i].id = static_cast<uint32_t>(i);
    sites[i].popularity = 1.0 / static_cast<double>(i + 1);
  }
  Rng rng(5);
  const auto graph = corpus::LinkGraph::Generate(sites, 8.0, rng);
  for (auto _ : state) {
    auto rank = pagerank::ComputePageRank(graph);
    benchmark::DoNotOptimize(rank);
  }
}
BENCHMARK(BM_PageRank)->Arg(1000)->Arg(10000);

}  // namespace

// Expanded BENCHMARK_MAIN(): defaults the native google-benchmark JSON
// report to BENCH_micro_kernels.json so the perf-trend tooling finds this
// bench's results next to the bench_json.h envelopes (its schema is
// google-benchmark's, not ours — documented in docs/OBSERVABILITY.md). An
// explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
