// google-benchmark microbenchmarks of the inference kernels: vote
// computation, sigmoid/log-sum-exp, matrix compilation, one EM iteration,
// and a PageRank sweep. These are the building blocks whose cost the
// Table 7 stage timings aggregate.
#include <benchmark/benchmark.h>

#include "common/math.h"
#include "corpus/link_graph.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "pagerank/pagerank.h"
#include "core/multilayer_model.h"

namespace {

using namespace kbt;

void BM_Sigmoid(benchmark::State& state) {
  double x = -8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sigmoid(x));
    x += 0.001;
    if (x > 8.0) x = -8.0;
  }
}
BENCHMARK(BM_Sigmoid);

void BM_VoteComputation(benchmark::State& state) {
  double r = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeVotes(r, 0.2 * r, 1.0));
    r += 1e-4;
    if (r > 0.95) r = 0.1;
  }
}
BENCHMARK(BM_VoteComputation);

void BM_LogSumExp(benchmark::State& state) {
  std::vector<double> xs(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i % 37) - 18.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogSumExp(xs));
  }
}
BENCHMARK(BM_LogSumExp)->Arg(4)->Arg(64)->Arg(1024);

exp::SyntheticData& SharedSynthetic() {
  static exp::SyntheticData data = [] {
    exp::SyntheticConfig config;
    config.num_sources = 50;
    config.num_subjects = 40;
    config.num_predicates = 5;
    config.num_extractors = 10;
    return exp::GenerateSynthetic(config);
  }();
  return data;
}

void BM_CompileMatrix(benchmark::State& state) {
  const auto& synthetic = SharedSynthetic();
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  for (auto _ : state) {
    auto matrix = extract::CompiledMatrix::Build(synthetic.data, assignment);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(synthetic.data.size()));
}
BENCHMARK(BM_CompileMatrix);

void BM_MultiLayerIteration(benchmark::State& state) {
  const auto& synthetic = SharedSynthetic();
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  const auto matrix =
      extract::CompiledMatrix::Build(synthetic.data, assignment);
  core::MultiLayerConfig config;
  config.max_iterations = static_cast<int>(state.range(0));
  config.convergence_tol = 0.0;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  for (auto _ : state) {
    auto result = core::MultiLayerModel::Run(*matrix, config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(matrix->num_slots()) *
                          state.range(0));
}
BENCHMARK(BM_MultiLayerIteration)->Arg(1)->Arg(5);

void BM_SplitAndMerge(benchmark::State& state) {
  const auto& synthetic = SharedSynthetic();
  granularity::SplitMergeOptions source_options;
  source_options.min_size = 3;
  source_options.max_size = 50;
  granularity::SplitMergeOptions extractor_options = source_options;
  for (auto _ : state) {
    auto assignment = granularity::SplitMergeAssignment(
        synthetic.data, source_options, extractor_options);
    benchmark::DoNotOptimize(assignment);
  }
}
BENCHMARK(BM_SplitAndMerge);

void BM_PageRank(benchmark::State& state) {
  std::vector<corpus::Website> sites(
      static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i].id = static_cast<uint32_t>(i);
    sites[i].popularity = 1.0 / static_cast<double>(i + 1);
  }
  Rng rng(5);
  const auto graph = corpus::LinkGraph::Generate(sites, 8.0, rng);
  for (auto _ : state) {
    auto rank = pagerank::ComputePageRank(graph);
    benchmark::DoNotOptimize(rank);
  }
}
BENCHMARK(BM_PageRank)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
