// Reproduces Figure 6: the distribution of predicted extraction
// correctness p(C=1|X) for (a) triples with type errors (which are
// extraction mistakes by construction) and (b) triples the Freebase-like KB
// knows to be true. A good model pushes the former toward 0 and the latter
// toward high probabilities.
#include <cstdio>

#include "bench/bench_json.h"
#include "common/histogram.h"
#include "dataflow/parallel.h"
#include "eval/gold_standard.h"
#include "exp/kv_sim.h"
#include "exp/runners.h"
#include "exp/table_printer.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "core/initialization.h"
#include "core/multilayer_model.h"

int main() {
  using namespace kbt;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed: %s\n",
                 kv.status().ToString().c_str());
    return 1;
  }
  const eval::GoldStandard gold(kv->partial_kb, kv->corpus.world());

  // MULTILAYER+ at the finest granularity.
  const auto assignment = granularity::FinestAssignment(kv->data);
  const auto matrix = extract::CompiledMatrix::Build(kv->data, assignment);
  if (!matrix.ok()) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }
  exp::RunnerOptions options;
  core::SmartInitOptions smart;
  smart.initialize_extractors = false;
  smart.min_labeled = 1;
  smart.smoothing = 1.0;
  const auto init = core::InitialQualityFromLabels(
      *matrix,
      [&gold](kb::DataItemId d, kb::ValueId v) { return gold.Label(d, v); },
      options.multilayer, smart);
  const auto result = core::MultiLayerModel::Run(
      *matrix, options.multilayer, init, &dataflow::DefaultExecutor());
  if (!result.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  Histogram type_error = Histogram::UniformProbabilityBuckets(20);
  Histogram freebase_true = Histogram::UniformProbabilityBuckets(20);
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    const kb::DataItemId item = matrix->item_id(matrix->slot_item(s));
    const kb::ValueId value = matrix->slot_value(s);
    if (gold.IsTypeError(item, value)) {
      type_error.Add(result->slot_correct_prob[s]);
    } else if (kv->partial_kb.Label(item, value) == kb::LcwaLabel::kTrue) {
      freebase_true.Add(result->slot_correct_prob[s]);
    }
  }

  exp::PrintBanner(
      "Figure 6: predicted extraction correctness by gold class");
  exp::TablePrinter table(
      {"p(C=1|X) bucket", "%type-error", "%Freebase-true"});
  for (size_t b = 0; b < type_error.num_buckets(); ++b) {
    char label[32];
    std::snprintf(label, sizeof(label), "[%.2f,%.2f)",
                  type_error.bucket_lower(b),
                  0.05 * static_cast<double>(b + 1));
    table.AddRow({label,
                  exp::TablePrinter::Fmt(100.0 * type_error.Fraction(b), 1),
                  exp::TablePrinter::Fmt(100.0 * freebase_true.Fraction(b),
                                         1)});
  }
  table.Print();

  // Headline statistics (Section 5.3.2).
  double te_below_01 = 0.0;
  double te_above_07 = 0.0;
  double fb_below_01 = 0.0;
  double fb_above_07 = 0.0;
  for (size_t b = 0; b < type_error.num_buckets(); ++b) {
    const double lower = type_error.bucket_lower(b);
    if (lower < 0.1) {
      te_below_01 += type_error.Fraction(b);
      fb_below_01 += freebase_true.Fraction(b);
    }
    if (lower >= 0.7) {
      te_above_07 += type_error.Fraction(b);
      fb_above_07 += freebase_true.Fraction(b);
    }
  }
  std::printf(
      "\ntype-error triples: %.0f%% below 0.1 (paper: 80%%), %.0f%% above "
      "0.7 (paper: 8%%)\nFreebase-true triples: %.0f%% below 0.1 (paper: "
      "26%%), %.0f%% above 0.7 (paper: 54%%)\n",
      100 * te_below_01, 100 * te_above_07, 100 * fb_below_01,
      100 * fb_above_07);

  bench::BenchJsonWriter writer("fig6_extraction_correctness", false);
  writer.AddMetric("type_error_below_01_fraction", te_below_01, "ratio");
  writer.AddMetric("type_error_above_07_fraction", te_above_07, "ratio");
  writer.AddMetric("freebase_true_below_01_fraction", fb_below_01, "ratio");
  writer.AddMetric("freebase_true_above_07_fraction", fb_above_07, "ratio");
  return writer.WriteFile("BENCH_fig6.json") ? 0 : 1;
}
