// Reproduces Table 5: SqV / WDev / AUC-PR / Cov for the three methods
// (SINGLELAYER, MULTILAYER, MULTILAYERSM) with default and gold-standard
// ("+") initialization, on the KV-scale simulation with an LCWA +
// type-checking gold standard.
#include <cstdio>

#include "dataflow/parallel.h"
#include "eval/gold_standard.h"
#include "exp/kv_sim.h"
#include "exp/runners.h"
#include "exp/table_printer.h"

int main() {
  using namespace kbt;
  using exp::Method;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed: %s\n",
                 kv.status().ToString().c_str());
    return 1;
  }
  const eval::GoldStandard gold(kv->partial_kb, kv->corpus.world());

  exp::PrintBanner("Table 5: comparison of methods on the KV simulation");
  std::printf("corpus: %zu sites, %zu pages, %zu observations; gold: LCWA on "
              "a %zu-fact partial KB + type checking\n",
              kv->corpus.num_websites(), kv->corpus.num_pages(),
              kv->data.size(), kv->partial_kb.num_facts());

  exp::TablePrinter table({"Method", "SqV", "WDev", "AUC-PR", "Cov"});
  for (bool smart : {false, true}) {
    for (Method method : {Method::kSingleLayer, Method::kMultiLayer,
                          Method::kMultiLayerSM}) {
      exp::RunnerOptions options;
      options.smart_init = smart;
      const auto run = exp::RunMethodOnKv(method, *kv, gold, options,
                                          &dataflow::DefaultExecutor());
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", exp::MethodName(method).data(),
                     run.status().ToString().c_str());
        return 1;
      }
      table.AddRow({std::string(exp::MethodName(method)) + (smart ? "+" : ""),
                    exp::TablePrinter::Fmt(run->metrics.sqv),
                    exp::TablePrinter::Fmt(run->metrics.wdev, 4),
                    exp::TablePrinter::Fmt(run->metrics.auc_pr),
                    exp::TablePrinter::Fmt(run->metrics.coverage)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper reference (Table 5):\n"
      "  SingleLayer    0.131 0.061  0.454 0.952\n"
      "  MultiLayer     0.105 0.042  0.439 0.849\n"
      "  MultiLayerSM   0.090 0.021  0.449 0.939\n"
      "  SingleLayer+   0.063 0.0043 0.630 0.953\n"
      "  MultiLayer+    0.054 0.0040 0.693 0.864\n"
      "  MultiLayerSM+  0.059 0.0039 0.631 0.955\n"
      "Shape checks: multi-layer beats single-layer on SqV/WDev; SM beats\n"
      "plain multi-layer without smart init; smart init raises coverage.\n");
  return 0;
}
