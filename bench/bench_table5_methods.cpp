// Reproduces Table 5: SqV / WDev / AUC-PR / Cov for the three methods
// (SINGLELAYER, MULTILAYER, MULTILAYERSM) with default and gold-standard
// ("+") initialization, on the KV-scale simulation with an LCWA +
// type-checking gold standard. Each method is one facade pipeline over the
// shared cube.
#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

int main() {
  using namespace kbt;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed: %s\n",
                 kv.status().ToString().c_str());
    return 1;
  }
  const eval::GoldStandard gold(kv->partial_kb, kv->corpus.world());

  exp::PrintBanner("Table 5: comparison of methods on the KV simulation");
  std::printf("corpus: %zu sites, %zu pages, %zu observations; gold: LCWA on "
              "a %zu-fact partial KB + type checking\n",
              kv->corpus.num_websites(), kv->corpus.num_pages(),
              kv->data.size(), kv->partial_kb.num_facts());

  struct MethodSpec {
    const char* name;
    api::Model model;
    api::Granularity granularity;
  };
  const MethodSpec methods[] = {
      {"SingleLayer", api::Model::kSingleLayer, api::Granularity::kProvenance},
      {"MultiLayer", api::Model::kMultiLayer, api::Granularity::kFinest},
      {"MultiLayerSM", api::Model::kMultiLayer, api::Granularity::kSplitMerge},
  };

  exp::TablePrinter table({"Method", "SqV", "WDev", "AUC-PR", "Cov"});
  std::string methods_json = "[";
  bool first_method = true;
  for (bool smart : {false, true}) {
    for (const MethodSpec& method : methods) {
      api::Options options = api::Options::Paper();
      options.model = method.model;
      options.granularity = method.granularity;
      options.smart_init = smart;
      auto pipeline = api::PipelineBuilder()
                          .FromDataset(&kv->data)
                          .WithGoldStandard(&gold)
                          .WithOptions(options)
                          .WithExecutor(&dataflow::DefaultExecutor())
                          .Build();
      if (!pipeline.ok()) {
        std::fprintf(stderr, "%s build failed: %s\n", method.name,
                     pipeline.status().ToString().c_str());
        return 1;
      }
      const auto report = pipeline->Run();
      if (!report.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method.name,
                     report.status().ToString().c_str());
        return 1;
      }
      const eval::TripleMetrics& metrics = *report->metrics;
      table.AddRow({std::string(method.name) + (smart ? "+" : ""),
                    exp::TablePrinter::Fmt(metrics.sqv),
                    exp::TablePrinter::Fmt(metrics.wdev, 4),
                    exp::TablePrinter::Fmt(metrics.auc_pr),
                    exp::TablePrinter::Fmt(metrics.coverage)});
      methods_json += first_method ? "\n" : ",\n";
      first_method = false;
      methods_json +=
          "    {\"method\": \"" +
          bench::JsonEscape(std::string(method.name) + (smart ? "+" : "")) +
          "\", \"sqv\": " + bench::JsonNumber(metrics.sqv) +
          ", \"wdev\": " + bench::JsonNumber(metrics.wdev) +
          ", \"auc_pr\": " + bench::JsonNumber(metrics.auc_pr) +
          ", \"coverage\": " + bench::JsonNumber(metrics.coverage) + "}";
    }
  }
  methods_json += "\n  ]";
  table.Print();
  std::printf(
      "\nPaper reference (Table 5):\n"
      "  SingleLayer    0.131 0.061  0.454 0.952\n"
      "  MultiLayer     0.105 0.042  0.439 0.849\n"
      "  MultiLayerSM   0.090 0.021  0.449 0.939\n"
      "  SingleLayer+   0.063 0.0043 0.630 0.953\n"
      "  MultiLayer+    0.054 0.0040 0.693 0.864\n"
      "  MultiLayerSM+  0.059 0.0039 0.631 0.955\n"
      "Shape checks: multi-layer beats single-layer on SqV/WDev; SM beats\n"
      "plain multi-layer without smart init; smart init raises coverage.\n");

  bench::BenchJsonWriter writer("table5_methods", false);
  writer.AddMetadata("corpus_observations",
                     static_cast<double>(kv->data.size()));
  writer.AddRawSection("methods", methods_json);
  return writer.WriteFile("BENCH_table5.json") ? 0 : 1;
}
