// Reproduces Table 6: contribution of the inference components, ablating
// one piece of MULTILAYER+ at a time:
//   p(Vd|C-hat)        — MAP C in the value step instead of Section 3.3.3's
//                         uncertainty-weighted version;
//   Not updating alpha — freeze the prior p(C=1) (Section 3.3.4 off);
//   I(X > phi)         — threshold confidences at 0 instead of Section 3.5's
//                         soft weighting.
#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "dataflow/parallel.h"
#include "eval/gold_standard.h"
#include "exp/kv_sim.h"
#include "exp/runners.h"
#include "exp/table_printer.h"

int main() {
  using namespace kbt;

  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed: %s\n",
                 kv.status().ToString().c_str());
    return 1;
  }
  const eval::GoldStandard gold(kv->partial_kb, kv->corpus.world());

  struct Variant {
    const char* name;
    void (*tweak)(exp::RunnerOptions&);
  };
  const Variant variants[] = {
      {"MultiLayer+ (baseline)", [](exp::RunnerOptions&) {}},
      {"p(Vd|C-hat) (MAP C)",
       [](exp::RunnerOptions& o) {
         o.multilayer.weighted_value_votes = false;
       }},
      {"Not updating alpha",
       [](exp::RunnerOptions& o) { o.multilayer.update_alpha = false; }},
      {"I(X>phi) thresholded",
       [](exp::RunnerOptions& o) {
         o.multilayer.use_confidence_weights = false;
         o.multilayer.confidence_threshold = 0.0;
       }},
  };

  exp::PrintBanner("Table 6: contribution of inference components");
  exp::TablePrinter table({"Variant", "SqV", "WDev", "AUC-PR", "Cov"});
  std::string variants_json = "[";
  bool first_variant = true;
  for (const Variant& variant : variants) {
    exp::RunnerOptions options;
    options.smart_init = true;
    variant.tweak(options);
    const auto run =
        exp::RunMethodOnKv(exp::Method::kMultiLayer, *kv, gold, options,
                           &dataflow::DefaultExecutor());
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name,
                   run.status().ToString().c_str());
      return 1;
    }
    table.AddRow({variant.name, exp::TablePrinter::Fmt(run->metrics.sqv),
                  exp::TablePrinter::Fmt(run->metrics.wdev, 4),
                  exp::TablePrinter::Fmt(run->metrics.auc_pr),
                  exp::TablePrinter::Fmt(run->metrics.coverage)});
    variants_json += first_variant ? "\n" : ",\n";
    first_variant = false;
    variants_json += "    {\"variant\": \"" +
                     bench::JsonEscape(variant.name) +
                     "\", \"sqv\": " + bench::JsonNumber(run->metrics.sqv) +
                     ", \"wdev\": " + bench::JsonNumber(run->metrics.wdev) +
                     ", \"auc_pr\": " +
                     bench::JsonNumber(run->metrics.auc_pr) +
                     ", \"coverage\": " +
                     bench::JsonNumber(run->metrics.coverage) + "}";
  }
  variants_json += "\n  ]";
  table.Print();
  std::printf(
      "\nPaper reference (Table 6): MAP C degrades AUC-PR sharply; freezing\n"
      "alpha hurts calibration (WDev); thresholding confidences is roughly\n"
      "neutral (some extractors are bad at predicting confidence).\n");

  bench::BenchJsonWriter writer("table6_ablation", false);
  writer.AddRawSection("variants", variants_json);
  return writer.WriteFile("BENCH_table6.json") ? 0 : 1;
}
