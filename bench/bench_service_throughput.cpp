// Serving throughput: concurrent multi-session TrustService vs serial
// single-session serving.
//
// The paper's production setting is a serving problem: many consumers ask
// for trust estimates over many cubes while extraction events stream in.
// This bench replays identical mixed traffic (runs + appends, per-session
// FIFO) two ways:
//   serial_seconds      — one session at a time, direct Pipeline calls on
//                         one thread (the old one-batch-job-at-a-time model,
//                         serial stages);
//   concurrent_seconds  — every session registered on one TrustService and
//                         all requests submitted up front; sessions run
//                         concurrently AND each request's stages
//                         parallelize on the shared executor the service
//                         attaches to adopted pipelines.
// The ratio measures the served system as deployed against the batch
// model it replaces. Results land in BENCH_service.json for the
// perf-trend tooling.
//
// Usage: bench_service_throughput [--smoke]  (--smoke: tiny cubes for CI)
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "kbt/kbt.h"

namespace {

using namespace kbt;

struct Traffic {
  extract::RawDataset base;
  std::vector<std::vector<extract::RawObservation>> deltas;
};

/// Per-session traffic: a base cube plus `num_deltas` append batches carved
/// off its tail. The request sequence per session is
///   Run, Append x num_deltas, Run  =>  2 + num_deltas requests —
/// the appends land back to back, so the service can coalesce them into
/// one incremental patch while the first run is still executing.
Traffic MakeTraffic(uint64_t seed, bool smoke, size_t num_deltas) {
  exp::SyntheticConfig config;
  config.num_sources = smoke ? 25 : 120;
  config.num_extractors = smoke ? 4 : 6;
  config.num_subjects = smoke ? 20 : 40;
  config.num_predicates = smoke ? 5 : 6;
  config.seed = seed;
  Traffic traffic;
  traffic.base = exp::GenerateSynthetic(config).data;
  const size_t batch = smoke ? 32 : 256;
  for (size_t d = 0; d < num_deltas; ++d) {
    const size_t end = traffic.base.size() - d * batch;
    traffic.deltas.insert(
        traffic.deltas.begin(),
        {traffic.base.observations.begin() + static_cast<long>(end - batch),
         traffic.base.observations.begin() + static_cast<long>(end)});
  }
  traffic.base.observations.resize(traffic.base.size() -
                                   num_deltas * batch);
  return traffic;
}

api::Options ServingOptions() {
  api::Options options;
  options.granularity = api::Granularity::kFinest;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  options.multilayer.max_iterations = 10;
  return options;
}

StatusOr<api::Pipeline> BuildSession(const Traffic& traffic) {
  return api::PipelineBuilder()
      .FromDataset(extract::RawDataset(traffic.base))
      .WithOptions(ServingOptions())
      .Build();
}

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const size_t num_sessions = smoke ? 3 : 6;
  const size_t num_deltas = 2;
  const size_t requests_per_session = 2 + num_deltas;

  std::vector<Traffic> traffic;
  traffic.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    traffic.push_back(MakeTraffic(2015 + s, smoke, num_deltas));
  }

  // ---- Serial single-session serving: direct Pipeline calls ----
  // Sessions are constructed outside the stopwatch, mirroring the
  // concurrent pass (whose CreateSession calls precede its watch): both
  // modes time request traffic only.
  std::vector<api::Pipeline> serial_pipelines;
  for (const Traffic& t : traffic) {
    auto pipeline = BuildSession(t);
    if (!pipeline.ok()) Die("serial build", pipeline.status());
    serial_pipelines.push_back(std::move(*pipeline));
  }
  Stopwatch serial_watch;
  std::vector<size_t> serial_final_sizes;
  for (size_t s = 0; s < num_sessions; ++s) {
    const Traffic& t = traffic[s];
    api::Pipeline& pipeline = serial_pipelines[s];
    auto report = pipeline.Run();
    if (!report.ok()) Die("serial run", report.status());
    for (const auto& delta : t.deltas) {
      const Status appended = pipeline.AppendObservations(delta);
      if (!appended.ok()) Die("serial append", appended);
    }
    report = pipeline.Run();
    if (!report.ok()) Die("serial re-run", report.status());
    serial_final_sizes.push_back(report->counts.num_observations);
  }
  const double serial_seconds = serial_watch.ElapsedSeconds();

  // ---- Concurrent serving: one TrustService, shared executor ----
  dataflow::Executor executor;
  api::TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  api::TrustService service(service_options);
  for (size_t s = 0; s < num_sessions; ++s) {
    auto pipeline = BuildSession(traffic[s]);
    if (!pipeline.ok()) Die("service build", pipeline.status());
    const Status created = service.CreateSession(
        "session-" + std::to_string(s), std::move(*pipeline));
    if (!created.ok()) Die("create session", created);
  }

  Stopwatch concurrent_watch;
  std::vector<std::future<StatusOr<api::TrustReport>>> runs;
  std::vector<std::future<Status>> appends;
  for (size_t s = 0; s < num_sessions; ++s) {
    const std::string name = "session-" + std::to_string(s);
    runs.push_back(service.SubmitRun(name));
    for (const auto& delta : traffic[s].deltas) {
      appends.push_back(service.SubmitAppend(name, delta));
    }
    runs.push_back(service.SubmitRun(name));
  }
  for (auto& f : appends) {
    const Status status = f.get();
    if (!status.ok()) Die("served append", status);
  }
  size_t run_index = 0;
  for (size_t s = 0; s < num_sessions; ++s) {
    StatusOr<api::TrustReport> last = Status::Internal("no runs");
    for (size_t r = 0; r < 2; ++r) {
      last = runs[run_index++].get();
      if (!last.ok()) Die("served run", last.status());
    }
    // The served session saw exactly the traffic the serial pass did.
    if (last->counts.num_observations != serial_final_sizes[s]) {
      std::fprintf(stderr, "session %zu served %zu observations, serial saw "
                   "%zu\n", s, last->counts.num_observations,
                   serial_final_sizes[s]);
      return 1;
    }
  }
  const double concurrent_seconds = concurrent_watch.ElapsedSeconds();

  const size_t total_requests = num_sessions * requests_per_session;
  const double serial_rps = static_cast<double>(total_requests) /
                            serial_seconds;
  const double concurrent_rps = static_cast<double>(total_requests) /
                                concurrent_seconds;
  const api::TrustService::Stats stats = service.stats();

  exp::PrintBanner("Service throughput: concurrent sessions vs serial");
  exp::TablePrinter table({"Mode", "Sessions", "Requests", "Seconds",
                           "Requests/s"});
  table.AddRow({"serial", std::to_string(num_sessions),
                std::to_string(total_requests),
                exp::TablePrinter::Fmt(serial_seconds),
                exp::TablePrinter::Fmt(serial_rps, 1)});
  table.AddRow({"concurrent", std::to_string(num_sessions),
                std::to_string(total_requests),
                exp::TablePrinter::Fmt(concurrent_seconds),
                exp::TablePrinter::Fmt(concurrent_rps, 1)});
  table.Print();
  // On a 1-core box the two passes interleave on the same core, so the
  // ratio measures scheduling overhead, not concurrency: label it so
  // nobody reads a ~1.0x "speedup" as a regression (or a win).
  const bool scaling_meaningful = std::thread::hardware_concurrency() >= 2;
  std::printf("\nspeedup %.2fx on %d threads; %zu of %zu appends coalesced\n",
              serial_seconds / concurrent_seconds, executor.num_threads(),
              stats.appends_coalesced, stats.appends_submitted);
  if (!scaling_meaningful) {
    std::printf(
        "NOTE: only %u hardware thread(s) — the speedup above is not a "
        "concurrency measurement\n",
        std::thread::hardware_concurrency());
  }

  // ---- Machine-readable output for the perf trajectory ----
  bench::BenchJsonWriter writer("service_throughput", smoke);
  writer.AddMetadata("num_sessions", static_cast<double>(num_sessions));
  writer.AddMetadata("requests_per_session",
                     static_cast<double>(requests_per_session));
  writer.AddMetadata("num_threads",
                     static_cast<double>(executor.num_threads()));
  writer.AddMetadata("hardware_threads",
                     static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddMetadata("scaling_meaningful", scaling_meaningful);
  writer.AddMetric("serial_seconds", serial_seconds, "seconds");
  writer.AddMetric("concurrent_seconds", concurrent_seconds, "seconds");
  writer.AddMetric("serial_requests_per_second", serial_rps,
                   "ops_per_second");
  writer.AddMetric("concurrent_requests_per_second", concurrent_rps,
                   "ops_per_second");
  writer.AddMetric("speedup", serial_seconds / concurrent_seconds, "ratio");
  writer.AddMetric("appends_submitted",
                   static_cast<double>(stats.appends_submitted), "count");
  writer.AddMetric("appends_coalesced",
                   static_cast<double>(stats.appends_coalesced), "count");
  writer.AddMetric("append_batches_executed",
                   static_cast<double>(stats.append_batches_executed),
                   "count");
  return writer.WriteFile("BENCH_service.json") ? 0 : 1;
}
