// Reproduces Figure 3: SqV / SqC / SqA as the number of extractors grows
// from 1 to 10 on the Section 5.2.1 synthetic data (10 sources x 100
// triples, A=0.7, delta=0.5, R=0.5, P=0.8; 10 repetitions per point).
// Expected shape: the multi-layer model dominates the single-layer model on
// every loss; SqV drops quickly with more extractors; SqA stays flat and
// low for MULTILAYER while SINGLELAYER's grows.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "exp/synthetic_eval.h"
#include "exp/table_printer.h"

int main() {
  using kbt::exp::PrintBanner;
  using kbt::exp::RunSyntheticComparison;
  using kbt::exp::SyntheticComparison;
  using kbt::exp::SyntheticConfig;
  using kbt::exp::TablePrinter;

  constexpr int kRepetitions = 10;

  PrintBanner(
      "Figure 3: square losses vs #extractors (synthetic, 10 reps/point)");
  TablePrinter table({"#Extractors", "SqV(Single)", "SqV(Multi)",
                      "SqC(Multi)", "SqA(Single)", "SqA(Multi)"});

  std::string points_json = "[";
  double last_sqv_multi = 0.0;
  double last_sqa_multi = 0.0;
  for (int extractors = 1; extractors <= 10; ++extractors) {
    double sqv_single = 0.0;
    double sqv_multi = 0.0;
    double sqc_multi = 0.0;
    double sqa_single = 0.0;
    double sqa_multi = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      SyntheticConfig config;
      config.num_extractors = extractors;
      config.seed = static_cast<uint64_t>(1000 * extractors + rep);
      const auto run = RunSyntheticComparison(config);
      if (!run.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      sqv_single += run->single_layer.sqv;
      sqv_multi += run->multi_layer.sqv;
      sqc_multi += run->multi_layer.sqc;
      sqa_single += run->single_layer.sqa;
      sqa_multi += run->multi_layer.sqa;
    }
    table.AddRow({std::to_string(extractors),
                  TablePrinter::Fmt(sqv_single / kRepetitions),
                  TablePrinter::Fmt(sqv_multi / kRepetitions),
                  TablePrinter::Fmt(sqc_multi / kRepetitions),
                  TablePrinter::Fmt(sqa_single / kRepetitions),
                  TablePrinter::Fmt(sqa_multi / kRepetitions)});
    points_json += extractors == 1 ? "\n" : ",\n";
    points_json +=
        "    {\"extractors\": " + std::to_string(extractors) +
        ", \"sqv_single\": " +
        kbt::bench::JsonNumber(sqv_single / kRepetitions) +
        ", \"sqv_multi\": " +
        kbt::bench::JsonNumber(sqv_multi / kRepetitions) +
        ", \"sqc_multi\": " +
        kbt::bench::JsonNumber(sqc_multi / kRepetitions) +
        ", \"sqa_single\": " +
        kbt::bench::JsonNumber(sqa_single / kRepetitions) +
        ", \"sqa_multi\": " +
        kbt::bench::JsonNumber(sqa_multi / kRepetitions) + "}";
    last_sqv_multi = sqv_multi / kRepetitions;
    last_sqa_multi = sqa_multi / kRepetitions;
  }
  points_json += "\n  ]";
  table.Print();
  std::printf(
      "\nPaper shape: multi-layer below single-layer everywhere; SqV(Multi)\n"
      "falls fast with extractors; SqA(Multi) stays flat while SqA(Single)\n"
      "grows as extra extractors inject noise.\n");

  kbt::bench::BenchJsonWriter writer("fig3_extractors", false);
  writer.AddMetadata("repetitions", static_cast<double>(kRepetitions));
  writer.AddMetric("sqv_multi_at_10_extractors", last_sqv_multi, "loss");
  writer.AddMetric("sqa_multi_at_10_extractors", last_sqa_multi, "loss");
  writer.AddRawSection("points", points_json);
  return writer.WriteFile("BENCH_fig3.json") ? 0 : 1;
}
