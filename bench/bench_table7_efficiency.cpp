// Reproduces Table 7: relative running time of one MULTILAYER iteration and
// of the preparation step, for three granularity strategies on a heavily
// skewed KV simulation:
//   Normal       — finest granularity, no preparation;
//   Split        — SPLITANDMERGE with merging disabled;
//   Split&Merge  — full SPLITANDMERGE (m=5).
// Stage scheduling mirrors MapReduce: one task per source / extractor
// group, so giant groups serialize a stage until they are split.
#include <algorithm>
#include <cstdio>

#include "dataflow/parallel.h"
#include "dataflow/stage_timer.h"
#include "exp/kv_sim.h"
#include "exp/table_printer.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

namespace {

using namespace kbt;

struct StrategyTiming {
  double prep_source = 0.0;
  double prep_extractor = 0.0;
  double ext_corr = 0.0;
  double triple_pr = 0.0;
  double src_accu = 0.0;
  double ext_quality = 0.0;
  size_t num_sources = 0;
  size_t num_groups = 0;
  size_t biggest_group = 0;

  double PrepTotal() const { return prep_source + prep_extractor; }
  double IterTotal() const {
    return ext_corr + triple_pr + src_accu + ext_quality;
  }
};

StrategyTiming RunStrategy(const exp::KvSimData& kv,
                           const extract::GroupAssignment& assignment,
                           dataflow::StageTimers& timers) {
  StrategyTiming t;
  t.prep_source = timers.TotalSeconds("Prep.Source");
  t.prep_extractor = timers.TotalSeconds("Prep.Extractor");

  const auto matrix = extract::CompiledMatrix::Build(kv.data, assignment);
  if (!matrix.ok()) {
    std::fprintf(stderr, "compile failed\n");
    std::exit(1);
  }
  t.num_sources = matrix->num_sources();
  t.num_groups = matrix->num_extractor_groups();
  for (uint32_t g = 0; g < matrix->num_extractor_groups(); ++g) {
    const auto [b, e] = matrix->ExtractorEdges(g);
    t.biggest_group = std::max<size_t>(t.biggest_group, e - b);
  }

  core::MultiLayerConfig config;
  config.num_false_override = 10;
  config.max_iterations = 5;
  config.convergence_tol = 0.0;  // Always run all 5 iterations.
  const auto result = core::MultiLayerModel::Run(
      *matrix, config, {}, &dataflow::DefaultExecutor(), &timers);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed\n");
    std::exit(1);
  }
  const double iters = static_cast<double>(result->iterations);
  t.ext_corr = timers.TotalSeconds("I.ExtCorr") / iters;
  t.triple_pr = timers.TotalSeconds("II.TriplePr") / iters;
  t.src_accu = timers.TotalSeconds("III.SrcAccu") / iters;
  t.ext_quality = timers.TotalSeconds("IV.ExtQuality") / iters;
  return t;
}

}  // namespace

int main() {
  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Skewed());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }
  std::printf("skewed corpus: %zu sites, %zu pages, %zu observations\n",
              kv->corpus.num_websites(), kv->corpus.num_pages(),
              kv->data.size());

  // ---- Normal: finest granularity, no prep ----
  dataflow::StageTimers normal_timers;
  const auto normal_assignment = granularity::FinestAssignment(kv->data);
  const StrategyTiming normal =
      RunStrategy(*kv, normal_assignment, normal_timers);

  // ---- Split only ----
  granularity::SplitMergeOptions split_source;
  split_source.min_size = 1;
  split_source.enable_merge = false;
  split_source.max_size = 500;
  granularity::SplitMergeOptions split_extractor = split_source;
  dataflow::StageTimers split_timers;
  const auto split_assignment = granularity::SplitMergeAssignment(
      kv->data, split_source, split_extractor, &split_timers);
  if (!split_assignment.ok()) return 1;
  const StrategyTiming split =
      RunStrategy(*kv, *split_assignment, split_timers);

  // ---- Split & merge ----
  granularity::SplitMergeOptions sm_source;
  sm_source.min_size = 5;
  sm_source.max_size = 500;
  granularity::SplitMergeOptions sm_extractor = sm_source;
  dataflow::StageTimers sm_timers;
  const auto sm_assignment = granularity::SplitMergeAssignment(
      kv->data, sm_source, sm_extractor, &sm_timers);
  if (!sm_assignment.ok()) return 1;
  const StrategyTiming sm = RunStrategy(*kv, *sm_assignment, sm_timers);

  // ---- Report, normalized by one Normal iteration (the paper's unit) ----
  const double unit = normal.IterTotal();
  const auto rel = [unit](double seconds) {
    return exp::TablePrinter::Fmt(seconds / unit, 3);
  };
  exp::PrintBanner("Table 7: relative running time (1 = one Normal iteration)");
  exp::TablePrinter table({"Task", "Normal", "Split", "Split&Merge"});
  table.AddRow({"Prep.Source", "0", rel(split.prep_source),
                rel(sm.prep_source)});
  table.AddRow({"Prep.Extractor", "0", rel(split.prep_extractor),
                rel(sm.prep_extractor)});
  table.AddRow({"Prep.Total", "0", rel(split.PrepTotal()),
                rel(sm.PrepTotal())});
  table.AddRow({"I.ExtCorr", rel(normal.ext_corr), rel(split.ext_corr),
                rel(sm.ext_corr)});
  table.AddRow({"II.TriplePr", rel(normal.triple_pr), rel(split.triple_pr),
                rel(sm.triple_pr)});
  table.AddRow({"III.SrcAccu", rel(normal.src_accu), rel(split.src_accu),
                rel(sm.src_accu)});
  table.AddRow({"IV.ExtQuality", rel(normal.ext_quality),
                rel(split.ext_quality), rel(sm.ext_quality)});
  table.AddRow({"Iteration total", rel(normal.IterTotal()),
                rel(split.IterTotal()), rel(sm.IterTotal())});
  table.AddRow({"Total (prep + 5 iters)",
                rel(5 * normal.IterTotal()),
                rel(split.PrepTotal() + 5 * split.IterTotal()),
                rel(sm.PrepTotal() + 5 * sm.IterTotal())});
  table.Print();

  std::printf("\ngroup structure: Normal %zu sources / %zu extractor groups "
              "(biggest %zu edges);\nSplit %zu/%zu (biggest %zu); "
              "Split&Merge %zu/%zu (biggest %zu)\n",
              normal.num_sources, normal.num_groups, normal.biggest_group,
              split.num_sources, split.num_groups, split.biggest_group,
              sm.num_sources, sm.num_groups, sm.biggest_group);
  std::printf(
      "\nPaper shape: splitting giant extractor groups speeds up\n"
      "IV.ExtQuality by ~8.8x and halves overall time; merging adds modest\n"
      "prep cost without slowing iterations.\n");
  return 0;
}
