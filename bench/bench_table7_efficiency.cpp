// Reproduces Table 7: relative running time of one MULTILAYER iteration and
// of the preparation step, for three granularity strategies on a heavily
// skewed KV simulation:
//   Normal       — finest granularity, no preparation;
//   Split        — SPLITANDMERGE with merging disabled;
//   Split&Merge  — full SPLITANDMERGE (m=5).
// Stage scheduling mirrors MapReduce: one task per source / extractor
// group, so giant groups serialize a stage until they are split.
//
// Each strategy is one facade pipeline run with StageTimers attached; the
// stage totals also land in BENCH_table7.json for trend tooling.
#include <algorithm>
#include <cstdio>

#include "kbt/kbt.h"

namespace {

using namespace kbt;

struct StrategyTiming {
  double prep_source = 0.0;
  double prep_extractor = 0.0;
  double ext_corr = 0.0;
  double triple_pr = 0.0;
  double src_accu = 0.0;
  double ext_quality = 0.0;
  size_t num_sources = 0;
  size_t num_groups = 0;
  size_t biggest_group = 0;

  double PrepTotal() const { return prep_source + prep_extractor; }
  double IterTotal() const {
    return ext_corr + triple_pr + src_accu + ext_quality;
  }
};

StrategyTiming RunStrategy(const exp::KvSimData& kv,
                           const api::Options& options,
                           dataflow::StageTimers& timers) {
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(&kv.data)
                      .WithOptions(options)
                      .WithExecutor(&dataflow::DefaultExecutor())
                      .WithStageTimers(&timers)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  const auto report = pipeline->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }

  StrategyTiming t;
  t.prep_source = timers.TotalSeconds("Prep.Source");
  t.prep_extractor = timers.TotalSeconds("Prep.Extractor");
  t.num_sources = report->counts.num_sources;
  t.num_groups = report->counts.num_extractor_groups;
  const auto* matrix = pipeline->compiled_matrix();
  for (uint32_t g = 0; g < matrix->num_extractor_groups(); ++g) {
    const auto [b, e] = matrix->ExtractorEdges(g);
    t.biggest_group = std::max<size_t>(t.biggest_group, e - b);
  }
  const double iters = static_cast<double>(report->iterations());
  t.ext_corr = timers.TotalSeconds("I.ExtCorr") / iters;
  t.triple_pr = timers.TotalSeconds("II.TriplePr") / iters;
  t.src_accu = timers.TotalSeconds("III.SrcAccu") / iters;
  t.ext_quality = timers.TotalSeconds("IV.ExtQuality") / iters;
  return t;
}

void WriteJsonStrategy(std::FILE* out, const char* name,
                       const StrategyTiming& t, bool last) {
  std::fprintf(
      out,
      "    \"%s\": {\n"
      "      \"prep_source_seconds\": %.6f,\n"
      "      \"prep_extractor_seconds\": %.6f,\n"
      "      \"iter_ext_corr_seconds\": %.6f,\n"
      "      \"iter_triple_pr_seconds\": %.6f,\n"
      "      \"iter_src_accu_seconds\": %.6f,\n"
      "      \"iter_ext_quality_seconds\": %.6f,\n"
      "      \"iteration_total_seconds\": %.6f,\n"
      "      \"num_sources\": %zu,\n"
      "      \"num_extractor_groups\": %zu,\n"
      "      \"biggest_group_edges\": %zu\n"
      "    }%s\n",
      name, t.prep_source, t.prep_extractor, t.ext_corr, t.triple_pr,
      t.src_accu, t.ext_quality, t.IterTotal(), t.num_sources, t.num_groups,
      t.biggest_group, last ? "" : ",");
}

}  // namespace

int main() {
  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Skewed());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }
  std::printf("skewed corpus: %zu sites, %zu pages, %zu observations\n",
              kv->corpus.num_websites(), kv->corpus.num_pages(),
              kv->data.size());

  api::Options base;
  base.multilayer.num_false_override = 10;
  base.multilayer.max_iterations = 5;
  base.multilayer.convergence_tol = 0.0;  // Always run all 5 iterations.

  // ---- Normal: finest granularity, no prep ----
  api::Options normal_options = base;
  normal_options.granularity = api::Granularity::kFinest;
  dataflow::StageTimers normal_timers;
  const StrategyTiming normal = RunStrategy(*kv, normal_options,
                                            normal_timers);

  // ---- Split only ----
  api::Options split_options = base;
  split_options.granularity = api::Granularity::kSplitMerge;
  split_options.sm_source.min_size = 1;
  split_options.sm_source.enable_merge = false;
  split_options.sm_source.max_size = 500;
  split_options.sm_extractor = split_options.sm_source;
  dataflow::StageTimers split_timers;
  const StrategyTiming split = RunStrategy(*kv, split_options, split_timers);

  // ---- Split & merge ----
  api::Options sm_options = base;
  sm_options.granularity = api::Granularity::kSplitMerge;
  sm_options.sm_source.min_size = 5;
  sm_options.sm_source.max_size = 500;
  sm_options.sm_extractor = sm_options.sm_source;
  dataflow::StageTimers sm_timers;
  const StrategyTiming sm = RunStrategy(*kv, sm_options, sm_timers);

  // ---- Report, normalized by one Normal iteration (the paper's unit) ----
  const double unit = normal.IterTotal();
  const auto rel = [unit](double seconds) {
    return exp::TablePrinter::Fmt(seconds / unit, 3);
  };
  exp::PrintBanner("Table 7: relative running time (1 = one Normal iteration)");
  exp::TablePrinter table({"Task", "Normal", "Split", "Split&Merge"});
  table.AddRow({"Prep.Source", "0", rel(split.prep_source),
                rel(sm.prep_source)});
  table.AddRow({"Prep.Extractor", "0", rel(split.prep_extractor),
                rel(sm.prep_extractor)});
  table.AddRow({"Prep.Total", "0", rel(split.PrepTotal()),
                rel(sm.PrepTotal())});
  table.AddRow({"I.ExtCorr", rel(normal.ext_corr), rel(split.ext_corr),
                rel(sm.ext_corr)});
  table.AddRow({"II.TriplePr", rel(normal.triple_pr), rel(split.triple_pr),
                rel(sm.triple_pr)});
  table.AddRow({"III.SrcAccu", rel(normal.src_accu), rel(split.src_accu),
                rel(sm.src_accu)});
  table.AddRow({"IV.ExtQuality", rel(normal.ext_quality),
                rel(split.ext_quality), rel(sm.ext_quality)});
  table.AddRow({"Iteration total", rel(normal.IterTotal()),
                rel(split.IterTotal()), rel(sm.IterTotal())});
  table.AddRow({"Total (prep + 5 iters)",
                rel(5 * normal.IterTotal()),
                rel(split.PrepTotal() + 5 * split.IterTotal()),
                rel(sm.PrepTotal() + 5 * sm.IterTotal())});
  table.Print();

  std::printf("\ngroup structure: Normal %zu sources / %zu extractor groups "
              "(biggest %zu edges);\nSplit %zu/%zu (biggest %zu); "
              "Split&Merge %zu/%zu (biggest %zu)\n",
              normal.num_sources, normal.num_groups, normal.biggest_group,
              split.num_sources, split.num_groups, split.biggest_group,
              sm.num_sources, sm.num_groups, sm.biggest_group);
  std::printf(
      "\nPaper shape: splitting giant extractor groups speeds up\n"
      "IV.ExtQuality by ~8.8x and halves overall time; merging adds modest\n"
      "prep cost without slowing iterations.\n");

  // ---- Machine-readable output for the perf trajectory ----
  const char* json_path = "BENCH_table7.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"table7_efficiency\",\n"
               "  \"corpus\": {\"sites\": %zu, \"pages\": %zu, "
               "\"observations\": %zu},\n"
               "  \"unit_seconds\": %.6f,\n"
               "  \"strategies\": {\n",
               kv->corpus.num_websites(), kv->corpus.num_pages(),
               kv->data.size(), unit);
  WriteJsonStrategy(out, "normal", normal, false);
  WriteJsonStrategy(out, "split", split, false);
  WriteJsonStrategy(out, "split_merge", sm, true);
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path);
  return 0;
}
