// Reproduces Table 7: relative running time of one MULTILAYER iteration and
// of the preparation step, for three granularity strategies on a heavily
// skewed KV simulation:
//   Normal       — finest granularity, no preparation;
//   Split        — SPLITANDMERGE with merging disabled;
//   Split&Merge  — full SPLITANDMERGE (m=5).
// Stage scheduling mirrors MapReduce: one task per source / extractor
// group, so giant groups serialize a stage until they are split.
//
// Each strategy is one facade pipeline run with StageTimers attached; the
// stage totals also land in BENCH_table7.json for trend tooling.
//
// On top of the strategy table, the bench compares the two EM kernel kinds
// (src/kernels/): scalar_reference vs vectorized on the Normal pipeline,
// with a HARD bitwise parity gate (any posterior/accuracy bit mismatch
// exits 1), per-iteration GB/s under the bytes-touched model below, and a
// roofline note — all recorded under "kernels" in BENCH_table7.json.
//
// --smoke runs the same program on KvSimConfig::Small() (CI's check.sh
// gate); the default is the skewed Table 7 corpus.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "kbt/kbt.h"
#include "kernels/kernel_kind.h"
#include "kernels/kernels.h"

namespace {

using namespace kbt;

// ---- Bytes-touched model (per EM iteration) ----
//
// Counts each stream once per pass, gathers at element width, no cache
// reuse credit — a deliberate lower bound on traffic, so the GB/s figures
// are conservative:
//   per slot:  Stage II staging  mask 8 + weight 8 + idx 4 + vote-table
//              gather 8 + staged write 8                      = 36 B
//              item finisher     votes read 8 + posterior write 8 +
//              covered write 1                                 = 17 B
//              Stage III tally   idx 4 + weight 8 + posterior 8 = 20 B
//              Stage I           log-odds write 8 + alpha read 8 = 16 B
//   per edge:  Stage I staging   conf 4 + group 4 + net gather 8 +
//              term write 8                                    = 24 B
//              Stage IV tally    edge idx 4 + conf 4 + slot gather 4 +
//              correctness gather 8                            = 20 B
constexpr double kBytesPerSlotIter = 36 + 17 + 20 + 16;
constexpr double kBytesPerEdgeIter = 24 + 20;
// The E/M passes the kernel comparison times (II.TriplePr + III.SrcAccu)
// touch the per-slot streams only.
constexpr double kEmPassBytesPerSlot = 36 + 17 + 20;

double IterGbps(size_t num_slots, size_t num_edges, double iter_seconds) {
  if (iter_seconds <= 0.0) return 0.0;
  const double bytes = double(num_slots) * kBytesPerSlotIter +
                       double(num_edges) * kBytesPerEdgeIter;
  return bytes / iter_seconds / 1e9;
}

struct StrategyTiming {
  double prep_source = 0.0;
  double prep_extractor = 0.0;
  double ext_corr = 0.0;
  double triple_pr = 0.0;
  double src_accu = 0.0;
  double ext_quality = 0.0;
  size_t num_sources = 0;
  size_t num_groups = 0;
  size_t biggest_group = 0;
  size_t num_slots = 0;
  size_t num_edges = 0;

  double PrepTotal() const { return prep_source + prep_extractor; }
  double IterTotal() const {
    return ext_corr + triple_pr + src_accu + ext_quality;
  }
  double IterGbpsModel() const {
    return IterGbps(num_slots, num_edges, IterTotal());
  }
};

StrategyTiming RunStrategy(const exp::KvSimData& kv,
                           const api::Options& options,
                           dataflow::StageTimers& timers) {
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(&kv.data)
                      .WithOptions(options)
                      .WithExecutor(&dataflow::DefaultExecutor())
                      .WithStageTimers(&timers)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  const auto report = pipeline->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }

  StrategyTiming t;
  t.prep_source = timers.TotalSeconds("Prep.Source");
  t.prep_extractor = timers.TotalSeconds("Prep.Extractor");
  t.num_sources = report->counts.num_sources;
  t.num_groups = report->counts.num_extractor_groups;
  const auto* matrix = pipeline->compiled_matrix();
  t.num_slots = matrix->num_slots();
  t.num_edges = matrix->num_extractions();
  for (uint32_t g = 0; g < matrix->num_extractor_groups(); ++g) {
    const auto [b, e] = matrix->ExtractorEdges(g);
    t.biggest_group = std::max<size_t>(t.biggest_group, e - b);
  }
  const double iters = static_cast<double>(report->iterations());
  t.ext_corr = timers.TotalSeconds("I.ExtCorr") / iters;
  t.triple_pr = timers.TotalSeconds("II.TriplePr") / iters;
  t.src_accu = timers.TotalSeconds("III.SrcAccu") / iters;
  t.ext_quality = timers.TotalSeconds("IV.ExtQuality") / iters;
  return t;
}

std::string JsonStrategy(const StrategyTiming& t) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "      \"prep_source_seconds\": %.6f,\n"
      "      \"prep_extractor_seconds\": %.6f,\n"
      "      \"iter_ext_corr_seconds\": %.6f,\n"
      "      \"iter_triple_pr_seconds\": %.6f,\n"
      "      \"iter_src_accu_seconds\": %.6f,\n"
      "      \"iter_ext_quality_seconds\": %.6f,\n"
      "      \"iteration_total_seconds\": %.6f,\n"
      "      \"iteration_gbps\": %.3f,\n"
      "      \"num_sources\": %zu,\n"
      "      \"num_extractor_groups\": %zu,\n"
      "      \"biggest_group_edges\": %zu\n"
      "    }",
      t.prep_source, t.prep_extractor, t.ext_corr, t.triple_pr, t.src_accu,
      t.ext_quality, t.IterTotal(), t.IterGbpsModel(), t.num_sources,
      t.num_groups, t.biggest_group);
  return std::string(buf);
}

// ---- Kernel comparison (scalar_reference vs vectorized) ----

struct KernelTiming {
  double em_pass_seconds = 0.0;  // (II.TriplePr + III.SrcAccu) per iteration
  double em_pass_gbps = 0.0;
  double triple_pr_seconds = 0.0;  // II.TriplePr per iteration
  double src_accu_seconds = 0.0;   // III.SrcAccu per iteration
  api::TrustReport report;
  size_t num_slots = 0;
};

KernelTiming RunKernel(const exp::KvSimData& kv, const api::Options& base,
                       kernels::Kind kind) {
  api::Options options = base;
  options.granularity = api::Granularity::kFinest;
  options.multilayer.kernel = kind;
  dataflow::StageTimers timers;
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(&kv.data)
                      .WithOptions(options)
                      .WithExecutor(&dataflow::DefaultExecutor())
                      .WithStageTimers(&timers)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "kernel build failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  auto report = pipeline->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "kernel run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  KernelTiming t;
  t.num_slots = pipeline->compiled_matrix()->num_slots();
  const double iters = static_cast<double>(report->iterations());
  t.triple_pr_seconds = timers.TotalSeconds("II.TriplePr") / iters;
  t.src_accu_seconds = timers.TotalSeconds("III.SrcAccu") / iters;
  t.em_pass_seconds = t.triple_pr_seconds + t.src_accu_seconds;
  if (t.em_pass_seconds > 0.0) {
    t.em_pass_gbps = double(t.num_slots) * kEmPassBytesPerSlot /
                     t.em_pass_seconds / 1e9;
  }
  t.report = std::move(*report);
  return t;
}

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// The hard parity gate: both kernel kinds must have executed the same
/// float program. A single differing bit anywhere in the served state is a
/// contract violation (src/kernels/kernels.h), not a tolerance question.
void RequireKernelParity(const api::TrustReport& scalar,
                         const api::TrustReport& vectorized) {
  const core::MultiLayerResult& s = scalar.inference;
  const core::MultiLayerResult& v = vectorized.inference;
  const bool ok = BitsEqual(s.source_accuracy, v.source_accuracy) &&
                  BitsEqual(s.slot_correct_prob, v.slot_correct_prob) &&
                  BitsEqual(s.slot_value_prob, v.slot_value_prob) &&
                  BitsEqual(s.slot_alpha, v.slot_alpha) &&
                  BitsEqual(s.extractor_precision, v.extractor_precision) &&
                  BitsEqual(s.extractor_recall, v.extractor_recall) &&
                  BitsEqual(s.extractor_q, v.extractor_q) &&
                  BitsEqual(s.item_unobserved_value_prob,
                            v.item_unobserved_value_prob) &&
                  s.iterations == v.iterations;
  if (!ok) {
    std::fprintf(stderr,
                 "KERNEL PARITY VIOLATION: scalar_reference and vectorized "
                 "disagree bit-for-bit — see src/kernels/kernels.h\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const auto kv = exp::BuildKvSim(smoke ? exp::KvSimConfig::Small()
                                        : exp::KvSimConfig::Skewed());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }
  std::printf("%s corpus: %zu sites, %zu pages, %zu observations\n",
              smoke ? "small (smoke)" : "skewed", kv->corpus.num_websites(),
              kv->corpus.num_pages(), kv->data.size());

  api::Options base;
  base.multilayer.num_false_override = 10;
  base.multilayer.max_iterations = 5;
  base.multilayer.convergence_tol = 0.0;  // Always run all 5 iterations.

  // ---- Normal: finest granularity, no prep ----
  api::Options normal_options = base;
  normal_options.granularity = api::Granularity::kFinest;
  dataflow::StageTimers normal_timers;
  const StrategyTiming normal = RunStrategy(*kv, normal_options,
                                            normal_timers);

  // ---- Split only ----
  api::Options split_options = base;
  split_options.granularity = api::Granularity::kSplitMerge;
  split_options.sm_source.min_size = 1;
  split_options.sm_source.enable_merge = false;
  split_options.sm_source.max_size = 500;
  split_options.sm_extractor = split_options.sm_source;
  dataflow::StageTimers split_timers;
  const StrategyTiming split = RunStrategy(*kv, split_options, split_timers);

  // ---- Split & merge ----
  api::Options sm_options = base;
  sm_options.granularity = api::Granularity::kSplitMerge;
  sm_options.sm_source.min_size = 5;
  sm_options.sm_source.max_size = 500;
  sm_options.sm_extractor = sm_options.sm_source;
  dataflow::StageTimers sm_timers;
  const StrategyTiming sm = RunStrategy(*kv, sm_options, sm_timers);

  // ---- Report, normalized by one Normal iteration (the paper's unit) ----
  const double unit = normal.IterTotal();
  const auto rel = [unit](double seconds) {
    return exp::TablePrinter::Fmt(seconds / unit, 3);
  };
  exp::PrintBanner("Table 7: relative running time (1 = one Normal iteration)");
  exp::TablePrinter table({"Task", "Normal", "Split", "Split&Merge"});
  table.AddRow({"Prep.Source", "0", rel(split.prep_source),
                rel(sm.prep_source)});
  table.AddRow({"Prep.Extractor", "0", rel(split.prep_extractor),
                rel(sm.prep_extractor)});
  table.AddRow({"Prep.Total", "0", rel(split.PrepTotal()),
                rel(sm.PrepTotal())});
  table.AddRow({"I.ExtCorr", rel(normal.ext_corr), rel(split.ext_corr),
                rel(sm.ext_corr)});
  table.AddRow({"II.TriplePr", rel(normal.triple_pr), rel(split.triple_pr),
                rel(sm.triple_pr)});
  table.AddRow({"III.SrcAccu", rel(normal.src_accu), rel(split.src_accu),
                rel(sm.src_accu)});
  table.AddRow({"IV.ExtQuality", rel(normal.ext_quality),
                rel(split.ext_quality), rel(sm.ext_quality)});
  table.AddRow({"Iteration total", rel(normal.IterTotal()),
                rel(split.IterTotal()), rel(sm.IterTotal())});
  table.AddRow({"Total (prep + 5 iters)",
                rel(5 * normal.IterTotal()),
                rel(split.PrepTotal() + 5 * split.IterTotal()),
                rel(sm.PrepTotal() + 5 * sm.IterTotal())});
  table.Print();

  std::printf("\ngroup structure: Normal %zu sources / %zu extractor groups "
              "(biggest %zu edges);\nSplit %zu/%zu (biggest %zu); "
              "Split&Merge %zu/%zu (biggest %zu)\n",
              normal.num_sources, normal.num_groups, normal.biggest_group,
              split.num_sources, split.num_groups, split.biggest_group,
              sm.num_sources, sm.num_groups, sm.biggest_group);
  std::printf(
      "\nPaper shape (Table 7): splitting giant extractor groups speeds up\n"
      "extractor-quality computation ~8.8x and halves overall time; merging\n"
      "adds modest prep cost without slowing iterations. The effect needs\n"
      "real parallelism — on few cores the straggler has nobody to stall.\n");

  // ---- Kernel comparison: scalar_reference vs vectorized ----
  const KernelTiming scalar_kernel =
      RunKernel(*kv, base, kernels::Kind::kScalarReference);
  const KernelTiming vector_kernel =
      RunKernel(*kv, base, kernels::Kind::kVectorized);
  RequireKernelParity(scalar_kernel.report, vector_kernel.report);
  const double em_speedup =
      vector_kernel.em_pass_seconds > 0.0
          ? scalar_kernel.em_pass_seconds / vector_kernel.em_pass_seconds
          : 0.0;
  exp::PrintBanner("EM kernels: E/M pass (II.TriplePr + III.SrcAccu)");
  exp::TablePrinter kernel_table(
      {"Kernel", "II s/iter", "III s/iter", "s/iteration", "GB/s (model)",
       "speedup"});
  kernel_table.AddRow({"scalar_reference",
                       exp::TablePrinter::Fmt(scalar_kernel.triple_pr_seconds,
                                              6),
                       exp::TablePrinter::Fmt(scalar_kernel.src_accu_seconds,
                                              6),
                       exp::TablePrinter::Fmt(scalar_kernel.em_pass_seconds, 6),
                       exp::TablePrinter::Fmt(scalar_kernel.em_pass_gbps, 3),
                       "1.000"});
  kernel_table.AddRow({std::string("vectorized (") +
                           std::string(kernels::IsaName(kernels::ActiveIsa())) +
                           ")",
                       exp::TablePrinter::Fmt(vector_kernel.triple_pr_seconds,
                                              6),
                       exp::TablePrinter::Fmt(vector_kernel.src_accu_seconds,
                                              6),
                       exp::TablePrinter::Fmt(vector_kernel.em_pass_seconds, 6),
                       exp::TablePrinter::Fmt(vector_kernel.em_pass_gbps, 3),
                       exp::TablePrinter::Fmt(em_speedup, 3)});
  kernel_table.Print();
  std::printf("parity: bit-for-bit identical on %zu slots (hard gate)\n",
              scalar_kernel.num_slots);

  // ---- Machine-readable output for the perf trajectory ----
  bench::BenchJsonWriter writer("table7_efficiency", smoke);
  writer.AddMetadata("corpus_sites",
                     static_cast<double>(kv->corpus.num_websites()));
  writer.AddMetadata("corpus_pages",
                     static_cast<double>(kv->corpus.num_pages()));
  writer.AddMetadata("corpus_observations",
                     static_cast<double>(kv->data.size()));
  writer.AddMetadata("isa",
                     std::string(kernels::IsaName(kernels::ActiveIsa())));
  writer.AddMetric("unit_seconds", unit, "seconds");
  writer.AddMetric("em_pass_speedup", em_speedup, "ratio");
  writer.AddMetric("scalar_em_pass_seconds_per_iter",
                   scalar_kernel.em_pass_seconds, "seconds");
  writer.AddMetric("vectorized_em_pass_seconds_per_iter",
                   vector_kernel.em_pass_seconds, "seconds");
  std::string strategies = "{\n";
  strategies += "    \"normal\": " + JsonStrategy(normal) + ",\n";
  strategies += "    \"split\": " + JsonStrategy(split) + ",\n";
  strategies += "    \"split_merge\": " + JsonStrategy(sm) + "\n  }";
  writer.AddRawSection("strategies", strategies);
  char kernels_buf[2048];
  std::snprintf(
      kernels_buf, sizeof(kernels_buf),
      "{\n"
      "    \"isa\": \"%s\",\n"
      "    \"num_slots\": %zu,\n"
      "    \"scalar_reference\": {\"em_pass_seconds_per_iter\": %.6f, "
      "\"em_pass_gbps\": %.3f, \"triple_pr_seconds_per_iter\": %.6f, "
      "\"src_accu_seconds_per_iter\": %.6f},\n"
      "    \"vectorized\": {\"em_pass_seconds_per_iter\": %.6f, "
      "\"em_pass_gbps\": %.3f, \"triple_pr_seconds_per_iter\": %.6f, "
      "\"src_accu_seconds_per_iter\": %.6f},\n"
      "    \"em_pass_speedup\": %.3f,\n"
      "    \"parity\": \"bitwise-identical\",\n"
      "    \"bytes_model\": \"lower bound: each stream counted once, "
      "gathers at element width, no cache-reuse credit; %d B/slot for the "
      "E/M pass\",\n"
      "    \"roofline_note\": \"the E/M pass runs at ~0.2 flop/byte, so it "
      "sits on the memory roof: once em_pass_gbps approaches this machine's "
      "STREAM-class bandwidth, further speedup must come from touching "
      "fewer bytes (layout, blocking), not from more SIMD flops; the "
      "vectorized kind's win is mostly transcendental-call elision — the "
      "memoized per-source vote table (one log per source instead of one "
      "per slot) and the precompiled value grouping (one exp per distinct "
      "value instead of one per slot)\"\n"
      "  }",
      std::string(kernels::IsaName(kernels::ActiveIsa())).c_str(),
      scalar_kernel.num_slots, scalar_kernel.em_pass_seconds,
      scalar_kernel.em_pass_gbps, scalar_kernel.triple_pr_seconds,
      scalar_kernel.src_accu_seconds, vector_kernel.em_pass_seconds,
      vector_kernel.em_pass_gbps, vector_kernel.triple_pr_seconds,
      vector_kernel.src_accu_seconds, em_speedup,
      int(kEmPassBytesPerSlot));
  writer.AddRawSection("kernels", kernels_buf);
  return writer.WriteFile("BENCH_table7.json") ? 0 : 1;
}
