// Reproduces Figure 4: multi-layer square losses while sweeping one
// generator parameter at a time over {0.1 ... 0.9}:
//   - extractor recall R,
//   - extractor component accuracy P (triple precision ~ P^3),
//   - source accuracy A.
// Expected shape: higher quality => lower loss, with the two small
// deviations the paper calls out (SqA does not fall with R; SqV bumps
// slightly as P rises because false triples gain a little trust).
#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "exp/synthetic_eval.h"
#include "exp/table_printer.h"

namespace {

using kbt::exp::PrintBanner;
using kbt::exp::RunSyntheticComparison;
using kbt::exp::SyntheticConfig;
using kbt::exp::TablePrinter;

constexpr int kRepetitions = 10;

/// Runs the sweep varying one field of the config; returns the sweep's
/// points as a JSON array for the result envelope.
std::string Sweep(const char* title, double SyntheticConfig::* field,
                  uint64_t seed_base) {
  PrintBanner(title);
  TablePrinter table({"value", "SqV", "SqC", "SqA"});
  std::string points = "[";
  bool first = true;
  for (double value = 0.1; value <= 0.91; value += 0.2) {
    double sqv = 0.0;
    double sqc = 0.0;
    double sqa = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      SyntheticConfig config;
      config.*field = value;
      config.seed = seed_base + static_cast<uint64_t>(value * 100) * 17 +
                    static_cast<uint64_t>(rep);
      const auto run = RunSyntheticComparison(config);
      if (!run.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.status().ToString().c_str());
        std::exit(1);
      }
      sqv += run->multi_layer.sqv;
      sqc += run->multi_layer.sqc;
      sqa += run->multi_layer.sqa;
    }
    table.AddRow({TablePrinter::Fmt(value, 1),
                  TablePrinter::Fmt(sqv / kRepetitions),
                  TablePrinter::Fmt(sqc / kRepetitions),
                  TablePrinter::Fmt(sqa / kRepetitions)});
    points += first ? "\n" : ",\n";
    first = false;
    points += "    {\"value\": " + kbt::bench::JsonNumber(value) +
              ", \"sqv\": " + kbt::bench::JsonNumber(sqv / kRepetitions) +
              ", \"sqc\": " + kbt::bench::JsonNumber(sqc / kRepetitions) +
              ", \"sqa\": " + kbt::bench::JsonNumber(sqa / kRepetitions) +
              "}";
  }
  points += "\n  ]";
  table.Print();
  return points;
}

}  // namespace

int main() {
  const std::string recall = Sweep("Figure 4a: varying extractor recall R",
                                   &SyntheticConfig::recall, 11000);
  const std::string precision =
      Sweep("Figure 4b: varying extractor precision component P",
            &SyntheticConfig::component_accuracy, 23000);
  const std::string accuracy =
      Sweep("Figure 4c: varying source accuracy A",
            &SyntheticConfig::source_accuracy, 37000);
  std::printf("\nPaper shape: losses shrink as each quality knob rises.\n");

  kbt::bench::BenchJsonWriter writer("fig4_quality_sweep", false);
  writer.AddMetadata("repetitions", static_cast<double>(kRepetitions));
  writer.AddRawSection("recall_sweep", recall);
  writer.AddRawSection("precision_sweep", precision);
  writer.AddRawSection("accuracy_sweep", accuracy);
  return writer.WriteFile("BENCH_fig4.json") ? 0 : 1;
}
