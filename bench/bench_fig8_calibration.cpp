// Reproduces Figure 8: calibration curves (predicted probability vs real
// accuracy per WDev bucket) for SINGLELAYER+, MULTILAYER+ and
// MULTILAYERSM+ on the KV simulation.
#include <cstdio>
#include <map>

#include "bench/bench_json.h"
#include "dataflow/parallel.h"
#include "eval/gold_standard.h"
#include "eval/metrics.h"
#include "exp/kv_sim.h"
#include "exp/runners.h"
#include "exp/table_printer.h"

namespace {

using namespace kbt;

/// Calibration curve of one finished run against the gold standard.
std::vector<eval::CalibrationPoint> CurveFor(const exp::MethodRun& run,
                                             const eval::GoldStandard& gold) {
  std::vector<double> probs;
  std::vector<uint8_t> truth;
  for (const auto& p : run.predictions) {
    if (!p.covered) continue;
    const auto label = gold.Label(p.item, p.value);
    if (!label.has_value()) continue;
    probs.push_back(p.probability);
    truth.push_back(*label ? 1 : 0);
  }
  return eval::CalibrationCurve(probs, truth);
}

}  // namespace

int main() {
  const auto kv = exp::BuildKvSim(exp::KvSimConfig::Default());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }
  const eval::GoldStandard gold(kv->partial_kb, kv->corpus.world());

  exp::PrintBanner("Figure 8: calibration curves (predicted vs real)");
  exp::TablePrinter table({"Predicted bucket", "SingleLayer+", "MultiLayer+",
                           "MultiLayerSM+", "Ideal"});

  // Gather per-method curves keyed by bucket mean so rows align.
  std::map<int, std::array<double, 3>> rows;  // percent-bucket -> accuracies
  std::map<int, double> bucket_center;
  const exp::Method methods[3] = {exp::Method::kSingleLayer,
                                  exp::Method::kMultiLayer,
                                  exp::Method::kMultiLayerSM};
  for (int m = 0; m < 3; ++m) {
    exp::RunnerOptions options;
    options.smart_init = true;
    const auto run = exp::RunMethodOnKv(methods[m], *kv, gold, options,
                                        &dataflow::DefaultExecutor());
    if (!run.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    for (const auto& point : CurveFor(*run, gold)) {
      const int key = static_cast<int>(point.predicted_mean * 20.0);
      auto [it, inserted] = rows.emplace(key, std::array<double, 3>{
                                                  -1.0, -1.0, -1.0});
      it->second[static_cast<size_t>(m)] = point.empirical_accuracy;
      bucket_center[key] = 0.05 * key + 0.025;
    }
  }

  for (const auto& [key, accs] : rows) {
    char label[32];
    std::snprintf(label, sizeof(label), "[%.2f,%.2f)", 0.05 * key,
                  0.05 * (key + 1));
    std::vector<std::string> cells{label};
    for (double a : accs) {
      cells.push_back(a < 0 ? "-" : exp::TablePrinter::Fmt(a, 3));
    }
    cells.push_back(exp::TablePrinter::Fmt(bucket_center[key], 3));
    table.AddRow(std::move(cells));
  }
  table.Print();
  std::printf(
      "\nPaper shape: all three methods track the diagonal (well "
      "calibrated);\nthe multi-layer variants are closest to ideal.\n");

  kbt::bench::BenchJsonWriter writer("fig8_calibration", false);
  std::string points = "[";
  bool first = true;
  for (const auto& [key, accs] : rows) {
    points += first ? "\n" : ",\n";
    first = false;
    points += "    {\"bucket_center\": " +
              kbt::bench::JsonNumber(bucket_center[key]) +
              ", \"single_layer\": " + kbt::bench::JsonNumber(accs[0]) +
              ", \"multi_layer\": " + kbt::bench::JsonNumber(accs[1]) +
              ", \"multi_layer_sm\": " + kbt::bench::JsonNumber(accs[2]) +
              "}";
  }
  points += "\n  ]";
  writer.AddRawSection("calibration_points", points);
  return writer.WriteFile("BENCH_fig8.json") ? 0 : 1;
}
